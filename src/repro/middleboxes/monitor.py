"""Passive network monitor (a PRADS-like middlebox).

PRADS, the monitor used in the paper's scaling scenario, keeps two kinds of
state:

* a *per-flow reporting* record per connection (packet and byte counters,
  timestamps, the service detected on the flow) — this is what
  ``moveInternal`` relocates during scale-up and scale-down; and
* a *shared reporting* structure (``prads_stat`` in PRADS) of aggregate
  counters across all traffic — this is what ``mergeInternal`` combines during
  scale-down, by adding the counter values (exactly how the paper's modified
  PRADS handles ``putSharedReport``).

The monitor is passive: every packet is forwarded unmodified.  The collective
statistics of any set of monitor instances must equal those of a single
instance that saw all the traffic — the invariant the correctness experiment
(section 8.2) checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.flowspace import PROTO_ICMP, PROTO_TCP, PROTO_UDP, FlowKey
from ..core.southbound import ProcessingCosts
from ..core.state import SharedStateSlot, StateRole
from ..net.packet import Packet, SYN
from ..net.simulator import Simulator
from .base import FULL_GRANULARITY, Middlebox, ProcessResult, Verdict

#: Well-known service names by destination port, used for asset detection.
SERVICE_PORTS: Dict[int, str] = {
    80: "http",
    443: "https",
    22: "ssh",
    25: "smtp",
    53: "dns",
    143: "imap",
    3306: "mysql",
    8080: "http-alt",
}


@dataclass
class FlowRecord:
    """Per-flow reporting state: one record per observed connection."""

    key: FlowKey
    packets: int = 0
    bytes: int = 0
    first_seen: float = 0.0
    last_seen: float = 0.0
    service: Optional[str] = None
    syn_seen: bool = False

    def to_payload(self) -> dict:
        return {
            "key": self.key,
            "packets": self.packets,
            "bytes": self.bytes,
            "first_seen": self.first_seen,
            "last_seen": self.last_seen,
            "service": self.service,
            "syn_seen": self.syn_seen,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "FlowRecord":
        return cls(
            key=payload["key"],
            packets=int(payload["packets"]),
            bytes=int(payload["bytes"]),
            first_seen=float(payload["first_seen"]),
            last_seen=float(payload["last_seen"]),
            service=payload.get("service"),
            syn_seen=bool(payload.get("syn_seen", False)),
        )


@dataclass
class MonitorStats:
    """Shared reporting state: aggregate counters across all traffic."""

    total_packets: int = 0
    total_bytes: int = 0
    tcp_packets: int = 0
    udp_packets: int = 0
    icmp_packets: int = 0
    flows_seen: int = 0
    #: Detected assets: host address -> sorted list of services observed.
    assets: Dict[str, List[str]] = field(default_factory=dict)

    def record_asset(self, host: str, service: str) -> bool:
        """Record a service observed on a host; returns True when it is new."""
        services = self.assets.setdefault(host, [])
        if service in services:
            return False
        services.append(service)
        services.sort()
        return True

    def to_payload(self) -> dict:
        return {
            "total_packets": self.total_packets,
            "total_bytes": self.total_bytes,
            "tcp_packets": self.tcp_packets,
            "udp_packets": self.udp_packets,
            "icmp_packets": self.icmp_packets,
            "flows_seen": self.flows_seen,
            "assets": {host: list(services) for host, services in self.assets.items()},
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "MonitorStats":
        stats = cls(
            total_packets=int(payload["total_packets"]),
            total_bytes=int(payload["total_bytes"]),
            tcp_packets=int(payload["tcp_packets"]),
            udp_packets=int(payload["udp_packets"]),
            icmp_packets=int(payload["icmp_packets"]),
            flows_seen=int(payload["flows_seen"]),
        )
        stats.assets = {host: sorted(services) for host, services in payload.get("assets", {}).items()}
        return stats

    @staticmethod
    def merge(existing: "MonitorStats", incoming: "MonitorStats") -> "MonitorStats":
        """Counter addition plus asset union — the paper's putSharedReport behaviour."""
        merged = MonitorStats(
            total_packets=existing.total_packets + incoming.total_packets,
            total_bytes=existing.total_bytes + incoming.total_bytes,
            tcp_packets=existing.tcp_packets + incoming.tcp_packets,
            udp_packets=existing.udp_packets + incoming.udp_packets,
            icmp_packets=existing.icmp_packets + incoming.icmp_packets,
            flows_seen=existing.flows_seen + incoming.flows_seen,
        )
        merged.assets = {host: list(services) for host, services in existing.assets.items()}
        for host, services in incoming.assets.items():
            for service in services:
                merged.record_asset(host, service)
        return merged


#: Introspection event codes raised by the monitor.
EVENT_ASSET_DETECTED = "monitor.asset_detected"
EVENT_FLOW_SEEN = "monitor.flow_seen"


class PassiveMonitor(Middlebox):
    """A PRADS-like passive monitoring middlebox."""

    MB_TYPE = "monitor"

    #: Default cost model: shallow per-flow state, so gets/puts are cheaper than the IDS.
    DEFAULT_COSTS = ProcessingCosts(
        packet_processing=120e-6,
        get_per_chunk=300e-6,
        put_per_chunk=50e-6,
        get_scan_per_entry=1.0e-6,
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        costs: Optional[ProcessingCosts] = None,
        granularity: Sequence[str] = FULL_GRANULARITY,
        indexed_store: bool = False,
    ) -> None:
        super().__init__(
            sim,
            name,
            costs=costs or ProcessingCosts(**vars(self.DEFAULT_COSTS)),
            granularity=granularity,
            indexed_store=indexed_store,
        )
        self.shared_report = SharedStateSlot(MonitorStats(), merge=MonitorStats.merge)
        self.config.set("Monitor.PromiscuousMode", [True])
        self.config.set("Monitor.ServicePorts", [f"{port}:{name_}" for port, name_ in sorted(SERVICE_PORTS.items())])

    # -- packet processing -----------------------------------------------------------------

    def process_packet(self, packet: Packet) -> ProcessResult:
        key = packet.flow_key()
        canonical = key.bidirectional()
        stats: MonitorStats = self.shared_report.value
        record = self.report_store.get(canonical)
        new_flow = record is None
        if new_flow:
            record = FlowRecord(key=canonical, first_seen=self.sim.now)
            self.report_store.put(canonical, record)
            if not self.is_reprocessing:
                self.raise_event(EVENT_FLOW_SEEN, key=key)
        record.packets += 1
        record.bytes += packet.wire_size
        record.last_seen = self.sim.now
        if packet.has_flag(SYN):
            record.syn_seen = True
        service = SERVICE_PORTS.get(packet.tp_dst) or SERVICE_PORTS.get(packet.tp_src)
        if service is not None and record.service is None:
            record.service = service

        # Shared reporting state (the prads_stat equivalent).  Replayed packets
        # normally do NOT update shared counters: the source instance already
        # counted them, and counting them again would double-report.  The one
        # exception is a replay raised during a shared-state merge: the source's
        # post-snapshot counter updates will be discarded with the source, so
        # they must be applied here to avoid under-reporting.
        if not self.is_reprocessing or self.reprocess_covers_shared:
            stats.total_packets += 1
            stats.total_bytes += packet.wire_size
            if packet.nw_proto == PROTO_TCP:
                stats.tcp_packets += 1
            elif packet.nw_proto == PROTO_UDP:
                stats.udp_packets += 1
            elif packet.nw_proto == PROTO_ICMP:
                stats.icmp_packets += 1
            if new_flow:
                stats.flows_seen += 1
            if service is not None:
                server = packet.nw_dst if SERVICE_PORTS.get(packet.tp_dst) else packet.nw_src
                if stats.record_asset(server, service):
                    self.raise_event(EVENT_ASSET_DETECTED, key=key, host=server, service=service)

        return ProcessResult(
            verdict=Verdict.FORWARD,
            updated_flows=[key],
            updated_shared=not self.is_reprocessing,
        )

    # -- state (de)serialisation --------------------------------------------------------------

    def serialize_report(self, key: FlowKey, obj: object) -> object:
        assert isinstance(obj, FlowRecord)
        return obj.to_payload()

    def deserialize_report(self, key: FlowKey, payload: object) -> object:
        return FlowRecord.from_payload(payload)  # type: ignore[arg-type]

    def serialize_shared(self, role: StateRole, value: object) -> object:
        assert isinstance(value, MonitorStats)
        return value.to_payload()

    def deserialize_shared(self, role: StateRole, payload: object) -> object:
        return MonitorStats.from_payload(payload)  # type: ignore[arg-type]

    # -- monitor-specific reporting --------------------------------------------------------------

    def statistics(self) -> dict:
        """Aggregate statistics equivalent to PRADS's textual stats output.

        Combines the shared reporting counters with per-flow reporting records
        currently resident at this instance.
        """
        stats: MonitorStats = self.shared_report.value
        return {
            "total_packets": stats.total_packets,
            "total_bytes": stats.total_bytes,
            "tcp_packets": stats.tcp_packets,
            "udp_packets": stats.udp_packets,
            "icmp_packets": stats.icmp_packets,
            "flows_seen": stats.flows_seen,
            "assets": {host: list(services) for host, services in sorted(stats.assets.items())},
            "resident_flow_records": len(self.report_store),
        }

    def flow_records(self) -> List[FlowRecord]:
        """All per-flow reporting records currently resident at this instance."""
        return [record for _, record in self.report_store.items()]


def combined_statistics(monitors: Sequence[PassiveMonitor]) -> dict:
    """Combine the statistics of several monitor instances.

    Used by the correctness experiment: the combination over all instances
    (after any scaling activity) must equal the statistics of one unmodified
    monitor that processed the whole trace.  Per-flow records that moved
    between instances are counted once because ``flows_seen`` travels with the
    shared reporting state merge, not with the per-flow records.
    """
    total = MonitorStats()
    for monitor in monitors:
        total = MonitorStats.merge(total, monitor.shared_report.value)
    return {
        "total_packets": total.total_packets,
        "total_bytes": total.total_bytes,
        "tcp_packets": total.tcp_packets,
        "udp_packets": total.udp_packets,
        "icmp_packets": total.icmp_packets,
        "flows_seen": total.flows_seen,
        "assets": {host: list(services) for host, services in sorted(total.assets.items())},
    }
