"""Network address translator.

The NAT is the paper's running example for introspection events and failure
recovery: its address/port mappings are the *critical* per-flow supporting
state that a failover application wants to learn about as soon as they are
created (requirement R6), so a replacement instance can be bootstrapped with a
minimal live snapshot while non-critical state (mapping timeouts) restarts at
default values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..core.errors import MiddleboxError
from ..core.flowspace import FlowKey
from ..core.southbound import ProcessingCosts
from ..net.packet import Packet
from ..net.simulator import Simulator
from .base import FULL_GRANULARITY, Middlebox, ProcessResult, Verdict

EVENT_MAPPING_CREATED = "nat.mapping_created"
EVENT_MAPPING_EXPIRED = "nat.mapping_expired"

#: Default idle timeout for mappings (seconds) — non-critical state.
DEFAULT_MAPPING_TIMEOUT = 120.0


@dataclass
class NatMapping:
    """Per-flow supporting state: one address/port translation."""

    internal_ip: str
    internal_port: int
    external_ip: str
    external_port: int
    created_at: float = 0.0
    last_used: float = 0.0

    def to_payload(self) -> dict:
        return {
            "internal_ip": self.internal_ip,
            "internal_port": self.internal_port,
            "external_ip": self.external_ip,
            "external_port": self.external_port,
            "created_at": self.created_at,
            "last_used": self.last_used,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "NatMapping":
        return cls(
            internal_ip=payload["internal_ip"],
            internal_port=int(payload["internal_port"]),
            external_ip=payload["external_ip"],
            external_port=int(payload["external_port"]),
            created_at=float(payload.get("created_at", 0.0)),
            last_used=float(payload.get("last_used", 0.0)),
        )


class NAT(Middlebox):
    """A source NAT translating internal addresses to one external address."""

    MB_TYPE = "nat"

    DEFAULT_COSTS = ProcessingCosts(packet_processing=80e-6, get_per_chunk=150e-6, put_per_chunk=30e-6)

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        external_ip: str = "203.0.113.1",
        port_range: Tuple[int, int] = (10_000, 60_000),
        internal_prefix: str = "10.0.0.0/8",
        costs: Optional[ProcessingCosts] = None,
        granularity: Sequence[str] = FULL_GRANULARITY,
    ) -> None:
        super().__init__(
            sim, name, costs=costs or ProcessingCosts(**vars(self.DEFAULT_COSTS)), granularity=granularity
        )
        self.config.set("NAT.ExternalIP", [external_ip])
        self.config.set("NAT.PortRangeStart", [port_range[0]])
        self.config.set("NAT.PortRangeEnd", [port_range[1]])
        self.config.set("NAT.InternalPrefix", [internal_prefix])
        self.config.set("NAT.MappingTimeout", [DEFAULT_MAPPING_TIMEOUT])
        self._next_port = port_range[0]
        #: External (ip, port) -> internal flow key, for translating return traffic.
        self._reverse: Dict[Tuple[str, int], FlowKey] = {}
        #: Critical-state restore table: (internal ip, internal port) -> (external ip, external port).
        #: Populated from the ``NAT.StaticMappings`` configuration key, which the
        #: failure-recovery application writes when bootstrapping a replacement.
        self._static_mappings: Dict[Tuple[str, int], Tuple[str, int]] = {}

    # -- configuration behaviour --------------------------------------------------------------

    def on_config_changed(self, key: str) -> None:
        if key in ("NAT.StaticMappings", "*"):
            self._load_static_mappings()

    def _load_static_mappings(self) -> None:
        """Parse ``internal_ip:port=external_ip:port`` entries from configuration."""
        if not self.config.has("NAT.StaticMappings"):
            return
        self._static_mappings.clear()
        for value in self.config.get_values("NAT.StaticMappings"):
            internal, _, external = str(value).partition("=")
            internal_ip, _, internal_port = internal.partition(":")
            external_ip, _, external_port = external.partition(":")
            if not (internal_ip and internal_port and external_ip and external_port):
                continue
            self._static_mappings[(internal_ip, int(internal_port))] = (external_ip, int(external_port))
            # Keep dynamic allocation clear of restored ports.
            self._next_port = max(self._next_port, int(external_port) + 1)

    # -- helpers -----------------------------------------------------------------------------

    @property
    def external_ip(self) -> str:
        return str(self.config.get_scalar("NAT.ExternalIP"))

    def _allocate_port(self) -> int:
        start = int(self.config.get_scalar("NAT.PortRangeStart", 10_000))
        end = int(self.config.get_scalar("NAT.PortRangeEnd", 60_000))
        if self._next_port < start:
            self._next_port = start
        if self._next_port > end:
            raise MiddleboxError(f"{self.name}: NAT port range exhausted")
        port = self._next_port
        self._next_port += 1
        return port

    def _is_internal(self, address: str) -> bool:
        from ..core.flowspace import IPv4Prefix

        prefix = IPv4Prefix.parse(str(self.config.get_scalar("NAT.InternalPrefix", "10.0.0.0/8")))
        return prefix.contains_ip(address)

    # -- packet processing -------------------------------------------------------------------

    def process_packet(self, packet: Packet) -> ProcessResult:
        key = packet.flow_key()
        if self._is_internal(packet.nw_src):
            return self._outbound(packet, key)
        return self._inbound(packet, key)

    def _outbound(self, packet: Packet, key: FlowKey) -> ProcessResult:
        canonical = key.bidirectional()
        mapping = self.support_store.get(canonical)
        created = False
        if mapping is None:
            restored = self._static_mappings.get((packet.nw_src, packet.tp_src))
            external_ip = restored[0] if restored else self.external_ip
            external_port = restored[1] if restored else self._allocate_port()
            mapping = NatMapping(
                internal_ip=packet.nw_src,
                internal_port=packet.tp_src,
                external_ip=external_ip,
                external_port=external_port,
                created_at=self.sim.now,
            )
            self.support_store.put(canonical, mapping)
            created = True
        mapping.last_used = self.sim.now
        self._reverse[(mapping.external_ip, mapping.external_port)] = canonical
        translated = packet.copy()
        translated.nw_src = mapping.external_ip
        translated.tp_src = mapping.external_port
        if created and not self.is_reprocessing:
            self.raise_event(
                EVENT_MAPPING_CREATED,
                key=key,
                external_ip=mapping.external_ip,
                external_port=mapping.external_port,
            )
        return ProcessResult(verdict=Verdict.FORWARD, packet=translated, updated_flows=[key])

    def _inbound(self, packet: Packet, key: FlowKey) -> ProcessResult:
        reverse_key = self._reverse.get((packet.nw_dst, packet.tp_dst))
        if reverse_key is None:
            # No mapping: the packet is unsolicited and is dropped.
            return ProcessResult(verdict=Verdict.DROP, updated_flows=[])
        mapping = self.support_store.get(reverse_key)
        if mapping is None:
            return ProcessResult(verdict=Verdict.DROP, updated_flows=[])
        mapping.last_used = self.sim.now
        translated = packet.copy()
        translated.nw_dst = mapping.internal_ip
        translated.tp_dst = mapping.internal_port
        return ProcessResult(verdict=Verdict.FORWARD, packet=translated, updated_flows=[reverse_key])

    # -- maintenance ----------------------------------------------------------------------------

    def expire_idle_mappings(self) -> int:
        """Remove mappings idle longer than the configured timeout; returns count removed."""
        timeout = float(self.config.get_scalar("NAT.MappingTimeout", DEFAULT_MAPPING_TIMEOUT))
        expired = []
        for key, mapping in self.support_store.items():
            if self.sim.now - mapping.last_used > timeout:
                expired.append((key, mapping))
        for key, mapping in expired:
            self.support_store.remove(key)
            self._reverse.pop((mapping.external_ip, mapping.external_port), None)
            self.raise_event(EVENT_MAPPING_EXPIRED, key=key)
        return len(expired)

    def rebuild_reverse_table(self) -> None:
        """Rebuild the reverse lookup table from per-flow state (after imports)."""
        self._reverse = {
            (mapping.external_ip, mapping.external_port): key for key, mapping in self.support_store.items()
        }

    def put_perflow(self, chunk, *, round=None) -> None:  # type: ignore[override]
        super().put_perflow(chunk, round=round)
        mapping = self.support_store.get(chunk.key)
        if isinstance(mapping, NatMapping):
            self._reverse[(mapping.external_ip, mapping.external_port)] = self.support_store.canonical_key(chunk.key)
            # Keep port allocation clear of imported mappings.
            self._next_port = max(self._next_port, mapping.external_port + 1)

    # -- state (de)serialisation -------------------------------------------------------------------

    def serialize_support(self, key: FlowKey, obj: object) -> object:
        assert isinstance(obj, NatMapping)
        return obj.to_payload()

    def deserialize_support(self, key: FlowKey, payload: object) -> object:
        return NatMapping.from_payload(payload)  # type: ignore[arg-type]
