"""Stateful firewall.

The firewall exercises the *configuration* corner of the state taxonomy: its
rule set is configuration state (owned and written by the controller, only
read by the middlebox), while its table of established connections is per-flow
supporting state that must move with flows during migration so that return
traffic of connections admitted before the move is not dropped afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.flowspace import FlowKey, FlowPattern
from ..core.southbound import ProcessingCosts
from ..net.packet import Packet
from ..net.simulator import Simulator
from .base import Middlebox, ProcessResult, Verdict

EVENT_CONNECTION_ALLOWED = "fw.connection_allowed"
EVENT_PACKET_DENIED = "fw.packet_denied"


@dataclass
class FirewallRule:
    """One configured rule: a pattern and an allow/deny action."""

    pattern: FlowPattern
    allow: bool

    def to_config_value(self) -> str:
        action = "allow" if self.allow else "deny"
        fields = ",".join(f"{name}={value}" for name, value in self.pattern.as_dict().items()) or "*"
        return f"{action} {fields}"

    @classmethod
    def from_config_value(cls, value: str) -> "FirewallRule":
        action, _, fields = value.partition(" ")
        pattern = FlowPattern.parse(fields if fields and fields != "*" else None)
        return cls(pattern=pattern, allow=action.strip().lower() == "allow")


@dataclass
class ConnectionEntry:
    """Per-flow supporting state: an admitted connection."""

    key: FlowKey
    admitted_at: float = 0.0
    packets: int = 0

    def to_payload(self) -> dict:
        return {"key": self.key, "admitted_at": self.admitted_at, "packets": self.packets}

    @classmethod
    def from_payload(cls, payload: dict) -> "ConnectionEntry":
        return cls(
            key=payload["key"],
            admitted_at=float(payload.get("admitted_at", 0.0)),
            packets=int(payload.get("packets", 0)),
        )


class Firewall(Middlebox):
    """A stateful firewall with an ordered allow/deny rule list."""

    MB_TYPE = "firewall"

    DEFAULT_COSTS = ProcessingCosts(packet_processing=70e-6, get_per_chunk=130e-6, put_per_chunk=25e-6)

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        rules: Sequence[FirewallRule] = (),
        default_allow: bool = False,
        costs: Optional[ProcessingCosts] = None,
    ) -> None:
        super().__init__(sim, name, costs=costs or ProcessingCosts(**vars(self.DEFAULT_COSTS)))
        self.config.set("FW.DefaultAllow", [default_allow])
        self.config.set("FW.Rules", [rule.to_config_value() for rule in rules])
        self.denied_packets = 0

    # -- configuration ------------------------------------------------------------------------

    def rules(self) -> List[FirewallRule]:
        """The configured rule list, in evaluation order."""
        return [FirewallRule.from_config_value(str(value)) for value in self.config.get_values("FW.Rules")]

    def add_rule(self, rule: FirewallRule) -> None:
        values = self.config.get_values("FW.Rules")
        values.append(rule.to_config_value())
        self.config.set("FW.Rules", values)

    @property
    def default_allow(self) -> bool:
        return bool(self.config.get_scalar("FW.DefaultAllow", False))

    # -- packet processing -----------------------------------------------------------------------

    def process_packet(self, packet: Packet) -> ProcessResult:
        key = packet.flow_key()
        canonical = key.bidirectional()
        entry = self.support_store.get(canonical)
        if entry is not None:
            entry.packets += 1
            return ProcessResult(verdict=Verdict.FORWARD, updated_flows=[key])
        if self._admit(key):
            entry = ConnectionEntry(key=canonical, admitted_at=self.sim.now, packets=1)
            self.support_store.put(canonical, entry)
            if not self.is_reprocessing:
                self.raise_event(EVENT_CONNECTION_ALLOWED, key=key)
            return ProcessResult(verdict=Verdict.FORWARD, updated_flows=[key])
        self.denied_packets += 1
        if not self.is_reprocessing:
            self.raise_event(EVENT_PACKET_DENIED, key=key)
        return ProcessResult(verdict=Verdict.DROP, updated_flows=[])

    def _admit(self, key: FlowKey) -> bool:
        for rule in self.rules():
            if rule.pattern.matches(key):
                return rule.allow
        return self.default_allow

    # -- state (de)serialisation --------------------------------------------------------------------

    def serialize_support(self, key: FlowKey, obj: object) -> object:
        assert isinstance(obj, ConnectionEntry)
        return obj.to_payload()

    def deserialize_support(self, key: FlowKey, payload: object) -> object:
        return ConnectionEntry.from_payload(payload)  # type: ignore[arg-type]
