"""Redundancy elimination (RE) encoder and decoder middleboxes (SmartRE-like).

The paper's live-migration scenario (section 6.1) uses an RE encoder at a
remote site and an RE decoder in each data center:

* the **encoder** maintains, per decoder, a packet cache (a ring buffer of
  recently seen content) and a fingerprint table (hashes of content chunks to
  cache offsets).  Redundant regions of a packet are replaced by small *shims*
  that reference the cache offset where the content was previously stored.
* the **decoder** maintains a packet cache that must stay byte-for-byte
  synchronised with the encoder's cache for that decoder: it reconstructs each
  packet by copying shim-referenced regions out of its own cache, and inserts
  the same raw regions into its cache in the same order as the encoder did.

Both caches are *shared supporting* state — the class of state that must be
cloned (never started empty) when a decoder is migrated, and the reason the
configuration+routing baseline leaves every encoded byte undecodable
(Table 3): once the caches diverge, shims point at content the decoder does
not have.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.errors import MiddleboxError
from ..core.flowspace import IPv4Prefix
from ..core.southbound import ProcessingCosts
from ..core.state import SharedStateSlot, StateRole
from ..net.packet import Packet
from ..net.simulator import Simulator
from .base import Middlebox, ProcessResult, Verdict

#: Content chunk size the encoder fingerprints (bytes).
CHUNK_SIZE = 64

#: Wire size of one shim: cache id (1) + offset (4) + length (2) + checksum (4).
SHIM_BYTES = 11

#: Default packet-cache capacity (bytes).  The paper uses 500 MB caches; the
#: simulated default is smaller so tests run quickly, and benchmarks scale it up.
DEFAULT_CACHE_CAPACITY = 256 * 1024


def _checksum(data: bytes) -> int:
    """A 32-bit checksum of a content region, carried in each shim."""
    return int.from_bytes(hashlib.sha1(data).digest()[:4], "big")


def _fingerprint(data: bytes) -> str:
    """Fingerprint used to index content chunks in the fingerprint table."""
    return hashlib.sha1(data).hexdigest()[:16]


class PacketCache:
    """A ring buffer of packet content, addressed by byte offset."""

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._buffer = bytearray(capacity)
        self.current_pos = 0
        self.max_reached = False

    def insert(self, content: bytes) -> int:
        """Store *content* at the current position and return its offset.

        Content that would run past the end of the buffer wraps to offset 0,
        mirroring the ring-buffer behaviour of the paper's implementation.
        """
        if len(content) > self.capacity:
            raise MiddleboxError("content larger than the packet cache")
        if self.current_pos + len(content) > self.capacity:
            self.current_pos = 0
            self.max_reached = True
        offset = self.current_pos
        self._buffer[offset : offset + len(content)] = content
        self.current_pos += len(content)
        return offset

    def read(self, offset: int, length: int) -> Optional[bytes]:
        """Read *length* bytes at *offset*; None when the region was never written."""
        if offset < 0 or length < 0 or offset + length > self.capacity:
            return None
        written_extent = self.capacity if self.max_reached else self.current_pos
        if offset + length > written_extent:
            return None
        return bytes(self._buffer[offset : offset + length])

    def clone(self) -> "PacketCache":
        duplicate = PacketCache(self.capacity)
        duplicate._buffer = bytearray(self._buffer)
        duplicate.current_pos = self.current_pos
        duplicate.max_reached = self.max_reached
        return duplicate

    @property
    def used_bytes(self) -> int:
        return self.capacity if self.max_reached else self.current_pos

    def to_payload(self) -> dict:
        return {
            "capacity": self.capacity,
            "buffer": bytes(self._buffer[: self.used_bytes]),
            "current_pos": self.current_pos,
            "max_reached": self.max_reached,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "PacketCache":
        cache = cls(int(payload["capacity"]))
        content = payload["buffer"]
        cache._buffer[: len(content)] = content
        cache.current_pos = int(payload["current_pos"])
        cache.max_reached = bool(payload["max_reached"])
        return cache


@dataclass
class DecoderCacheState:
    """The decoder's shared supporting state: its packet cache."""

    cache: PacketCache = field(default_factory=PacketCache)

    def clone(self) -> "DecoderCacheState":
        return DecoderCacheState(cache=self.cache.clone())

    def to_payload(self) -> dict:
        return {"cache": self.cache.to_payload()}

    @classmethod
    def from_payload(cls, payload: dict) -> "DecoderCacheState":
        return cls(cache=PacketCache.from_payload(payload["cache"]))


@dataclass
class EncoderCacheState:
    """The encoder's shared supporting state: one cache + fingerprint table per decoder."""

    caches: Dict[int, PacketCache] = field(default_factory=dict)
    fingerprints: Dict[int, Dict[str, int]] = field(default_factory=dict)

    def clone(self) -> "EncoderCacheState":
        return EncoderCacheState(
            caches={cache_id: cache.clone() for cache_id, cache in self.caches.items()},
            fingerprints={cache_id: dict(table) for cache_id, table in self.fingerprints.items()},
        )

    def to_payload(self) -> dict:
        return {
            "caches": {str(cache_id): cache.to_payload() for cache_id, cache in self.caches.items()},
            "fingerprints": {str(cache_id): dict(table) for cache_id, table in self.fingerprints.items()},
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "EncoderCacheState":
        return cls(
            caches={int(cache_id): PacketCache.from_payload(data) for cache_id, data in payload["caches"].items()},
            fingerprints={
                int(cache_id): {fp: int(offset) for fp, offset in table.items()}
                for cache_id, table in payload.get("fingerprints", {}).items()
            },
        )


def _chunk_regions(payload: bytes) -> List[Tuple[int, bytes]]:
    """Split a payload into fixed-size regions: (start offset in payload, content)."""
    return [(start, payload[start : start + CHUNK_SIZE]) for start in range(0, len(payload), CHUNK_SIZE)]


class REEncoder(Middlebox):
    """The RE encoder middlebox."""

    MB_TYPE = "re-encoder"

    DEFAULT_COSTS = ProcessingCosts(packet_processing=180e-6)

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
        costs: Optional[ProcessingCosts] = None,
    ) -> None:
        super().__init__(sim, name, costs=costs or ProcessingCosts(**vars(self.DEFAULT_COSTS)))
        self.cache_capacity = cache_capacity
        state = EncoderCacheState(caches={1: PacketCache(cache_capacity)}, fingerprints={1: {}})
        self.shared_support = SharedStateSlot(state, clone=EncoderCacheState.clone)
        self.config.set("NumCaches", [1])
        self.config.set("CacheFlows", ["0.0.0.0/0"])
        self.config.set("CacheSize", [cache_capacity])
        # When true, newly added caches start empty instead of being cloned from the
        # first cache — the behaviour of the configuration+routing baseline, which has
        # no way to clone decoder state and therefore must start afresh (section 8.1.2).
        self.config.set("NewCachesEmpty", [False])
        #: Total payload bytes seen and bytes eliminated by shims (per cache id).
        self.total_bytes = 0
        self.encoded_bytes = 0
        self.encoded_bytes_by_cache: Dict[int, int] = {1: 0}

    # -- configuration behaviour --------------------------------------------------------------

    def on_config_changed(self, key: str) -> None:
        if key in ("NumCaches", "*"):
            self._sync_cache_count()

    def _sync_cache_count(self) -> None:
        desired = int(self.config.get_scalar("NumCaches", 1))
        start_empty = bool(self.config.get_scalar("NewCachesEmpty", False))
        state: EncoderCacheState = self.shared_support.value
        while len(state.caches) < desired:
            new_id = max(state.caches) + 1
            template_id = min(state.caches)
            if start_empty:
                # Baseline behaviour: a brand-new, empty cache for the new decoder.
                state.caches[new_id] = PacketCache(state.caches[template_id].capacity)
                state.fingerprints[new_id] = {}
            else:
                # A new cache starts as a clone of the first cache (paper section 6.1,
                # step 3: "the encoder will clone its original cache to create a new
                # second cache"), so it is in sync with a decoder cloned from the
                # original decoder.
                state.caches[new_id] = state.caches[template_id].clone()
                state.fingerprints[new_id] = dict(state.fingerprints[template_id])
            self.encoded_bytes_by_cache.setdefault(new_id, 0)

    def _cache_for_packet(self, packet: Packet) -> int:
        """Choose the cache id for a packet from the CacheFlows prefix list."""
        prefixes = [str(value) for value in self.config.get_values("CacheFlows")]
        for index, prefix in enumerate(prefixes, start=1):
            try:
                if IPv4Prefix.parse(prefix).contains_ip(packet.nw_dst):
                    state: EncoderCacheState = self.shared_support.value
                    return index if index in state.caches else min(state.caches)
            except ValueError:
                continue
        state = self.shared_support.value
        return min(state.caches)

    # -- packet processing --------------------------------------------------------------------

    def process_packet(self, packet: Packet) -> ProcessResult:
        if not packet.payload:
            return ProcessResult(verdict=Verdict.FORWARD, updated_flows=[packet.flow_key()])
        cache_id = self._cache_for_packet(packet)
        state: EncoderCacheState = self.shared_support.value
        cache = state.caches[cache_id]
        table = state.fingerprints[cache_id]
        segments: List[dict] = []
        encoded_payload_size = 0
        saved = 0
        for _, region in _chunk_regions(packet.payload):
            fp = _fingerprint(region)
            offset = table.get(fp)
            cached = cache.read(offset, len(region)) if offset is not None else None
            if cached is not None and cached == region:
                segments.append(
                    {"type": "shim", "offset": offset, "length": len(region), "checksum": _checksum(region)}
                )
                encoded_payload_size += SHIM_BYTES
                saved += len(region) - SHIM_BYTES
            else:
                new_offset = cache.insert(region)
                table[fp] = new_offset
                segments.append({"type": "raw", "data": region})
                encoded_payload_size += len(region)
        self.total_bytes += packet.payload_size
        self.encoded_bytes += max(saved, 0)
        self.encoded_bytes_by_cache[cache_id] = self.encoded_bytes_by_cache.get(cache_id, 0) + max(saved, 0)
        encoded = packet.copy()
        encoded.annotations["re_segments"] = segments
        encoded.annotations["re_cache_id"] = cache_id
        encoded.encoded_size = encoded_payload_size
        return ProcessResult(
            verdict=Verdict.FORWARD,
            packet=encoded,
            updated_flows=[packet.flow_key()],
            updated_shared=True,
        )

    # -- shared-state (de)serialisation ----------------------------------------------------------

    def serialize_shared(self, role: StateRole, value: object) -> object:
        assert isinstance(value, EncoderCacheState)
        return value.to_payload()

    def deserialize_shared(self, role: StateRole, payload: object) -> object:
        return EncoderCacheState.from_payload(payload)  # type: ignore[arg-type]


class REDecoder(Middlebox):
    """The RE decoder middlebox."""

    MB_TYPE = "re-decoder"

    DEFAULT_COSTS = ProcessingCosts(packet_processing=150e-6)

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
        costs: Optional[ProcessingCosts] = None,
    ) -> None:
        super().__init__(sim, name, costs=costs or ProcessingCosts(**vars(self.DEFAULT_COSTS)))
        self.cache_capacity = cache_capacity
        self.shared_support = SharedStateSlot(
            DecoderCacheState(cache=PacketCache(cache_capacity)), clone=DecoderCacheState.clone
        )
        self.config.set("CacheSize", [cache_capacity])
        #: Accounting used by Table 3.
        self.decoded_packets = 0
        self.decoded_bytes = 0
        self.undecodable_packets = 0
        self.undecodable_bytes = 0
        self.passthrough_packets = 0

    @property
    def cache(self) -> PacketCache:
        return self.shared_support.value.cache

    # -- packet processing ---------------------------------------------------------------------

    def process_packet(self, packet: Packet) -> ProcessResult:
        segments = packet.annotations.get("re_segments")
        if not segments:
            self.passthrough_packets += 1
            return ProcessResult(verdict=Verdict.FORWARD, updated_flows=[packet.flow_key()])
        cache = self.cache
        reconstructed = bytearray()
        failed_bytes = 0
        for segment in segments:
            if segment["type"] == "raw":
                data = segment["data"]
                cache.insert(data)
                reconstructed.extend(data)
            else:
                content = cache.read(int(segment["offset"]), int(segment["length"]))
                if content is None or _checksum(content) != segment["checksum"]:
                    failed_bytes += int(segment["length"])
                    reconstructed.extend(b"\x00" * int(segment["length"]))
                else:
                    reconstructed.extend(content)
        decoded = packet.copy()
        decoded.payload = bytes(reconstructed)
        decoded.encoded_size = None
        decoded.annotations.pop("re_segments", None)
        if failed_bytes:
            self.undecodable_packets += 1
            self.undecodable_bytes += failed_bytes
            decoded.annotations["re_decode_failed"] = failed_bytes
        else:
            self.decoded_packets += 1
            self.decoded_bytes += len(reconstructed)
        return ProcessResult(
            verdict=Verdict.FORWARD,
            packet=decoded,
            updated_flows=[packet.flow_key()],
            updated_shared=True,
        )

    # -- shared-state (de)serialisation -----------------------------------------------------------

    def serialize_shared(self, role: StateRole, value: object) -> object:
        assert isinstance(value, DecoderCacheState)
        return value.to_payload()

    def deserialize_shared(self, role: StateRole, payload: object) -> object:
        return DecoderCacheState.from_payload(payload)  # type: ignore[arg-type]
