"""Connection load balancer (a Balance-like middlebox).

The load balancer of the paper's migration scenario assigns each new flow to a
back-end server and keeps the assignment as per-flow supporting state.  Moving
a flow's assignment together with the routing change is what prevents an
in-progress transaction from being re-assigned to a different server
(requirement R4); reconfiguring the back-end list per data center is the
paper's example of cloning and modifying configuration state (R3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.errors import MiddleboxError
from ..core.flowspace import FlowKey
from ..core.southbound import ProcessingCosts
from ..net.packet import Packet
from ..net.simulator import Simulator
from .base import Middlebox, ProcessResult, Verdict

EVENT_FLOW_ASSIGNED = "lb.flow_assigned"

#: The load balancer keys its per-flow state by source address and port only
#: (the destination is always the VIP), the paper's example of a middlebox with
#: coarser-than-five-tuple granularity.
LB_GRANULARITY = ("nw_proto", "nw_src", "tp_src")


@dataclass
class Assignment:
    """Per-flow supporting state: which back-end serves a client flow."""

    backend: str
    assigned_at: float = 0.0
    packets: int = 0

    def to_payload(self) -> dict:
        return {"backend": self.backend, "assigned_at": self.assigned_at, "packets": self.packets}

    @classmethod
    def from_payload(cls, payload: dict) -> "Assignment":
        return cls(
            backend=payload["backend"],
            assigned_at=float(payload.get("assigned_at", 0.0)),
            packets=int(payload.get("packets", 0)),
        )


class LoadBalancer(Middlebox):
    """A round-robin connection load balancer fronting a pool of servers."""

    MB_TYPE = "loadbalancer"

    DEFAULT_COSTS = ProcessingCosts(packet_processing=60e-6, get_per_chunk=120e-6, put_per_chunk=25e-6)

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        vip: str = "198.51.100.10",
        backends: Sequence[str] = (),
        costs: Optional[ProcessingCosts] = None,
    ) -> None:
        super().__init__(
            sim,
            name,
            costs=costs or ProcessingCosts(**vars(self.DEFAULT_COSTS)),
            granularity=LB_GRANULARITY,
        )
        self.config.set("LB.VIP", [vip])
        self.config.set("LB.Backends", list(backends))
        self.config.set("LB.Algorithm", ["round-robin"])
        self._rr_index = 0

    # -- configuration ----------------------------------------------------------------------

    @property
    def vip(self) -> str:
        return str(self.config.get_scalar("LB.VIP"))

    @property
    def backends(self) -> List[str]:
        return [str(value) for value in self.config.get_values("LB.Backends")]

    def set_backends(self, backends: Sequence[str]) -> None:
        """Replace the back-end pool (e.g. after migrating some servers away)."""
        self.config.set("LB.Backends", list(backends))

    # -- packet processing -----------------------------------------------------------------------

    def _pick_backend(self) -> str:
        backends = self.backends
        if not backends:
            raise MiddleboxError(f"{self.name}: no back-end servers configured")
        backend = backends[self._rr_index % len(backends)]
        self._rr_index += 1
        return backend

    def process_packet(self, packet: Packet) -> ProcessResult:
        key = packet.flow_key()
        if packet.nw_dst != self.vip:
            # Return traffic or traffic not addressed to the VIP passes through.
            return ProcessResult(verdict=Verdict.FORWARD, updated_flows=[])
        assignment = self.support_store.get(key)
        created = False
        if assignment is None:
            assignment = Assignment(backend=self._pick_backend(), assigned_at=self.sim.now)
            self.support_store.put(key, assignment)
            created = True
        assignment.packets += 1
        rewritten = packet.copy()
        rewritten.nw_dst = assignment.backend
        if created and not self.is_reprocessing:
            self.raise_event(EVENT_FLOW_ASSIGNED, key=key, backend=assignment.backend)
        return ProcessResult(verdict=Verdict.FORWARD, packet=rewritten, updated_flows=[key])

    # -- state (de)serialisation --------------------------------------------------------------------

    def serialize_support(self, key: FlowKey, obj: object) -> object:
        assert isinstance(obj, Assignment)
        return obj.to_payload()

    def deserialize_support(self, key: FlowKey, payload: object) -> object:
        return Assignment.from_payload(payload)  # type: ignore[arg-type]

    def assignments(self) -> List[Assignment]:
        """All flow-to-backend assignments currently resident at this instance."""
        return [assignment for _, assignment in self.support_store.items()]
