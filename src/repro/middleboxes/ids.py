"""Intrusion detection system (a Bro-like middlebox).

Bro is the IDS used in the paper's live-migration and VM-snapshot experiments.
The reproduction keeps the properties those experiments rely on:

* a per-flow *supporting* state tree per connection — TCP state machine,
  per-direction packet/byte counters, a connection history string, and the
  HTTP transactions reassembled on the flow (Bro's ``Connection`` object and
  the object tree hanging off it);
* shared *supporting* state used by scan detection (per-source sets of
  contacted destinations);
* ``conn.log`` and ``http.log`` outputs whose entries are produced when
  connections complete (or when the instance is finalised), which the
  correctness experiment compares between an unmodified instance and
  OpenMB-enabled instances;
* anomaly entries when a connection disappears without completing — the
  behaviour that makes VM-snapshot migration produce thousands of "incorrect
  entries" in section 8.1.2, because migrated flows terminate abruptly at the
  instance that no longer sees them.  Connections removed by a controller
  delete after a successful move are flagged as *moved* (the paper's moved
  flag) and produce no such entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.flowspace import PROTO_TCP, FlowKey
from ..core.southbound import ProcessingCosts
from ..core.state import SharedStateSlot, StateRole
from ..net.packet import ACK, FIN, RST, SYN, Packet
from ..net.simulator import Simulator
from .base import FULL_GRANULARITY, Middlebox, ProcessResult, Verdict

#: Conn-state labels (a subset of Bro's).
STATE_ATTEMPT = "S0"  # SYN seen, no reply
STATE_ESTABLISHED = "S1"  # handshake complete, not yet closed
STATE_CLOSED = "SF"  # normal close (FIN exchange)
STATE_RESET = "RSTO"  # closed by RST
STATE_INCOMPLETE = "INCOMPLETE"  # disappeared without closing (anomaly)
STATE_MOVED = "MOVED"  # removed because its state was migrated elsewhere

#: Scan detection threshold: distinct destinations contacted by one source.
SCAN_THRESHOLD = 25

EVENT_CONNECTION_ESTABLISHED = "ids.connection_established"
EVENT_SCAN_DETECTED = "ids.scan_detected"


@dataclass
class HttpTransaction:
    """One HTTP request/response pair reassembled on a connection."""

    method: str = ""
    uri: str = ""
    host: str = ""
    status: int = 0
    request_bytes: int = 0
    response_bytes: int = 0
    complete: bool = False

    def to_payload(self) -> dict:
        return {
            "method": self.method,
            "uri": self.uri,
            "host": self.host,
            "status": self.status,
            "request_bytes": self.request_bytes,
            "response_bytes": self.response_bytes,
            "complete": self.complete,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "HttpTransaction":
        return cls(
            method=payload.get("method", ""),
            uri=payload.get("uri", ""),
            host=payload.get("host", ""),
            status=int(payload.get("status", 0)),
            request_bytes=int(payload.get("request_bytes", 0)),
            response_bytes=int(payload.get("response_bytes", 0)),
            complete=bool(payload.get("complete", False)),
        )


@dataclass
class Connection:
    """Per-flow supporting state: the IDS's view of one transport connection."""

    key: FlowKey
    state: str = STATE_ATTEMPT
    orig_packets: int = 0
    resp_packets: int = 0
    orig_bytes: int = 0
    resp_bytes: int = 0
    start_time: float = 0.0
    last_time: float = 0.0
    history: str = ""
    service: str = ""
    http: List[HttpTransaction] = field(default_factory=list)
    moved: bool = False
    logged: bool = False

    def to_payload(self) -> dict:
        return {
            "key": self.key,
            "state": self.state,
            "orig_packets": self.orig_packets,
            "resp_packets": self.resp_packets,
            "orig_bytes": self.orig_bytes,
            "resp_bytes": self.resp_bytes,
            "start_time": self.start_time,
            "last_time": self.last_time,
            "history": self.history,
            "service": self.service,
            "http": [txn.to_payload() for txn in self.http],
            "moved": self.moved,
            "logged": self.logged,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Connection":
        return cls(
            key=payload["key"],
            state=payload["state"],
            orig_packets=int(payload["orig_packets"]),
            resp_packets=int(payload["resp_packets"]),
            orig_bytes=int(payload["orig_bytes"]),
            resp_bytes=int(payload["resp_bytes"]),
            start_time=float(payload["start_time"]),
            last_time=float(payload["last_time"]),
            history=payload.get("history", ""),
            service=payload.get("service", ""),
            http=[HttpTransaction.from_payload(item) for item in payload.get("http", [])],
            moved=bool(payload.get("moved", False)),
            logged=bool(payload.get("logged", False)),
        )


@dataclass(frozen=True)
class ConnLogEntry:
    """One ``conn.log`` record."""

    orig_host: str
    orig_port: int
    resp_host: str
    resp_port: int
    proto: int
    service: str
    conn_state: str
    orig_packets: int
    resp_packets: int
    orig_bytes: int
    resp_bytes: int


@dataclass(frozen=True)
class HttpLogEntry:
    """One ``http.log`` record."""

    orig_host: str
    resp_host: str
    method: str
    uri: str
    host: str
    status: int
    request_bytes: int
    response_bytes: int


@dataclass
class ScanTable:
    """Shared supporting state: destinations contacted per source (scan detection)."""

    contacted: Dict[str, List[str]] = field(default_factory=dict)

    def record(self, source: str, destination: str) -> int:
        """Record a contact; returns the number of distinct destinations for the source."""
        destinations = self.contacted.setdefault(source, [])
        if destination not in destinations:
            destinations.append(destination)
        return len(destinations)

    def to_payload(self) -> dict:
        return {"contacted": {src: list(dsts) for src, dsts in self.contacted.items()}}

    @classmethod
    def from_payload(cls, payload: dict) -> "ScanTable":
        return cls(contacted={src: list(dsts) for src, dsts in payload.get("contacted", {}).items()})

    @staticmethod
    def merge(existing: "ScanTable", incoming: "ScanTable") -> "ScanTable":
        merged = ScanTable(contacted={src: list(dsts) for src, dsts in existing.contacted.items()})
        for src, dsts in incoming.contacted.items():
            for dst in dsts:
                merged.record(src, dst)
        return merged


class IDS(Middlebox):
    """A Bro-like intrusion detection middlebox."""

    MB_TYPE = "ids"

    #: Deep per-flow state makes gets and puts the most expensive of our middleboxes.
    DEFAULT_COSTS = ProcessingCosts(
        packet_processing=250e-6,
        get_per_chunk=800e-6,
        put_per_chunk=130e-6,
        get_scan_per_entry=2.0e-6,
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        costs: Optional[ProcessingCosts] = None,
        granularity: Sequence[str] = FULL_GRANULARITY,
        indexed_store: bool = False,
    ) -> None:
        super().__init__(
            sim,
            name,
            costs=costs or ProcessingCosts(**vars(self.DEFAULT_COSTS)),
            granularity=granularity,
            indexed_store=indexed_store,
        )
        self.shared_support = SharedStateSlot(ScanTable(), merge=ScanTable.merge)
        self.conn_log: List[ConnLogEntry] = []
        self.http_log: List[HttpLogEntry] = []
        self.alerts: List[dict] = []
        self.config.set("IDS.ScanThreshold", [SCAN_THRESHOLD])
        self.config.set("IDS.HTTPPorts", [80, 8080])
        self.config.set("IDS.Rules", ["scan-detect", "http-analyze"])

    # =====================================================================================
    # Packet processing
    # =====================================================================================

    def process_packet(self, packet: Packet) -> ProcessResult:
        key = packet.flow_key()
        canonical = key.bidirectional()
        connection = self.support_store.get(canonical)
        is_new = connection is None
        if is_new:
            connection = Connection(key=canonical, start_time=self.sim.now)
            self.support_store.put(canonical, connection)
        assert connection is not None
        is_originator = key == canonical
        self._update_counters(connection, packet, is_originator)
        self._advance_tcp_state(connection, packet, is_originator)
        if self._is_http_port(packet):
            connection.service = "http"
            self._analyze_http(connection, packet, is_originator)
        updated_shared = False
        if is_new and not self.is_reprocessing:
            updated_shared = self._scan_detect(packet)
        if connection.state in (STATE_CLOSED, STATE_RESET) and not connection.logged:
            if self.is_reprocessing:
                # The source middlebox processed this packet normally and already
                # emitted the conn.log entry; emitting it here too would duplicate it.
                connection.logged = True
            else:
                self._log_connection(connection, connection.state)
        return ProcessResult(
            verdict=Verdict.FORWARD,
            updated_flows=[key],
            updated_shared=updated_shared,
        )

    def _update_counters(self, connection: Connection, packet: Packet, is_originator: bool) -> None:
        connection.last_time = self.sim.now
        if is_originator:
            connection.orig_packets += 1
            connection.orig_bytes += packet.payload_size
        else:
            connection.resp_packets += 1
            connection.resp_bytes += packet.payload_size

    def _advance_tcp_state(self, connection: Connection, packet: Packet, is_originator: bool) -> None:
        if packet.nw_proto != PROTO_TCP:
            connection.state = STATE_ESTABLISHED
            return
        if packet.has_flag(SYN) and is_originator:
            connection.history += "S"
            if connection.state == STATE_ATTEMPT and not self.is_reprocessing:
                self.raise_event(EVENT_CONNECTION_ESTABLISHED, key=connection.key)
        elif packet.has_flag(SYN) and not is_originator:
            connection.history += "h"
            connection.state = STATE_ESTABLISHED
        if packet.has_flag(ACK) and connection.state == STATE_ATTEMPT and not packet.has_flag(SYN):
            connection.state = STATE_ESTABLISHED
            connection.history += "A"
        if packet.has_flag(FIN):
            connection.history += "F" if is_originator else "f"
            if connection.history.count("F") and connection.history.count("f"):
                connection.state = STATE_CLOSED
        if packet.has_flag(RST):
            connection.history += "R" if is_originator else "r"
            connection.state = STATE_RESET

    def _is_http_port(self, packet: Packet) -> bool:
        http_ports = set(self.config.get_values("IDS.HTTPPorts"))
        return packet.tp_dst in http_ports or packet.tp_src in http_ports

    def _analyze_http(self, connection: Connection, packet: Packet, is_originator: bool) -> None:
        if not packet.payload:
            return
        try:
            text = packet.payload.decode("utf-8", errors="ignore")
        except Exception:  # pragma: no cover - decode with errors="ignore" cannot fail
            return
        if is_originator and self._looks_like_request(text):
            transaction = HttpTransaction(request_bytes=packet.payload_size)
            first_line = text.split("\r\n", 1)[0]
            parts = first_line.split(" ")
            if len(parts) >= 2:
                transaction.method = parts[0]
                transaction.uri = parts[1]
            for line in text.split("\r\n")[1:]:
                if line.lower().startswith("host:"):
                    transaction.host = line.split(":", 1)[1].strip()
            connection.http.append(transaction)
        elif is_originator and connection.http:
            connection.http[-1].request_bytes += packet.payload_size
        elif not is_originator and connection.http:
            transaction = connection.http[-1]
            if text.startswith("HTTP/") and not transaction.complete:
                parts = text.split(" ")
                if len(parts) >= 2 and parts[1][:3].isdigit():
                    transaction.status = int(parts[1][:3])
                transaction.complete = True
                transaction.response_bytes += packet.payload_size
                if not self.is_reprocessing:
                    self._log_http(connection, transaction)
            else:
                transaction.response_bytes += packet.payload_size

    @staticmethod
    def _looks_like_request(text: str) -> bool:
        return any(text.startswith(method + " ") for method in ("GET", "POST", "PUT", "DELETE", "HEAD"))

    def _scan_detect(self, packet: Packet) -> bool:
        table: ScanTable = self.shared_support.value
        distinct = table.record(packet.nw_src, packet.nw_dst)
        threshold = int(self.config.get_scalar("IDS.ScanThreshold", SCAN_THRESHOLD))
        if distinct == threshold and not self.is_reprocessing:
            alert = {"type": "scan", "source": packet.nw_src, "destinations": distinct, "time": self.sim.now}
            self.alerts.append(alert)
            self.raise_event(EVENT_SCAN_DETECTED, key=packet.flow_key(), source=packet.nw_src)
        return True

    # =====================================================================================
    # Logging
    # =====================================================================================

    def _log_connection(self, connection: Connection, conn_state: str) -> None:
        key = connection.key
        entry = ConnLogEntry(
            orig_host=key.nw_src,
            orig_port=key.tp_src,
            resp_host=key.nw_dst,
            resp_port=key.tp_dst,
            proto=key.nw_proto,
            service=connection.service,
            conn_state=conn_state,
            orig_packets=connection.orig_packets,
            resp_packets=connection.resp_packets,
            orig_bytes=connection.orig_bytes,
            resp_bytes=connection.resp_bytes,
        )
        self.conn_log.append(entry)
        connection.logged = True

    def _log_http(self, connection: Connection, transaction: HttpTransaction) -> None:
        self.http_log.append(
            HttpLogEntry(
                orig_host=connection.key.nw_src,
                resp_host=connection.key.nw_dst,
                method=transaction.method,
                uri=transaction.uri,
                host=transaction.host,
                status=transaction.status,
                request_bytes=transaction.request_bytes,
                response_bytes=transaction.response_bytes,
            )
        )

    def finalize(self) -> None:
        """Flush log entries for connections still open (end of trace / shutdown).

        Connections that never completed produce INCOMPLETE entries — these are
        the anomalies that make VM-snapshot migration incorrect.  Connections
        whose state was moved away by the controller were deleted via
        ``delSupportPerflow`` and are not present any more, so they produce no
        entries here (the moved flag keeps an explicit guard as well).
        """
        for _, connection in self.support_store.items():
            if connection.logged or connection.moved:
                continue
            if connection.state in (STATE_CLOSED, STATE_RESET):
                self._log_connection(connection, connection.state)
            else:
                self._log_connection(connection, STATE_INCOMPLETE)

    def incorrect_entries(self) -> List[ConnLogEntry]:
        """conn.log entries that reflect anomalies rather than real connection ends."""
        return [entry for entry in self.conn_log if entry.conn_state == STATE_INCOMPLETE]

    # =====================================================================================
    # State (de)serialisation and move integration
    # =====================================================================================

    def serialize_support(self, key: FlowKey, obj: object) -> object:
        assert isinstance(obj, Connection)
        return obj.to_payload()

    def deserialize_support(self, key: FlowKey, payload: object) -> object:
        return Connection.from_payload(payload)  # type: ignore[arg-type]

    def serialize_shared(self, role: StateRole, value: object) -> object:
        assert isinstance(value, ScanTable)
        return value.to_payload()

    def deserialize_shared(self, role: StateRole, payload: object) -> object:
        return ScanTable.from_payload(payload)  # type: ignore[arg-type]

    def on_perflow_deleted(self, role: StateRole, key: FlowKey, obj: object) -> None:
        """A controller delete after a successful move: mark the connection moved."""
        if isinstance(obj, Connection):
            obj.moved = True

    # =====================================================================================
    # State-size accounting (used by the VM-snapshot comparison)
    # =====================================================================================

    def state_size_bytes(self, pattern: Optional[object] = None) -> int:
        """Approximate size of resident per-flow supporting state in bytes."""
        from ..core.chunks import serialize_payload
        from ..core.flowspace import FlowPattern

        flow_pattern = pattern if isinstance(pattern, FlowPattern) else FlowPattern.wildcard()
        total = 0
        for key, connection in self.support_store.items():
            if flow_pattern.matches_either_direction(key):
                total += len(serialize_payload(connection.to_payload()))
        return total
