"""Middlebox base class.

Every middlebox in the reproduction derives from :class:`Middlebox`, which
provides:

* attachment to the simulated network (it is a
  :class:`~repro.net.topology.Node`: packets arrive via :meth:`receive`, are
  processed after a simulated per-packet cost, and are forwarded onward);
* the internal state containers of the taxonomy — a hierarchical configuration
  tree, per-flow supporting and reporting stores, and optional shared
  supporting/reporting slots;
* a full implementation of the southbound
  :class:`~repro.core.southbound.MiddleboxInterface`: sealed export/import of
  per-flow and shared chunks, deletes, statistics, event subscriptions,
  transfer marking, and side-effect-free re-processing;
* re-process event generation: when a packet updates state that is flagged as
  transferred (because a move or clone exported it), the middlebox raises a
  re-process event carrying the packet (paper section 4.2.1);
* introspection event generation subject to the middlebox's event filter.

Subclasses implement the middlebox-specific packet-processing logic
(:meth:`process_packet`) plus the (de)serialisation hooks for their native
state objects — exactly the split of responsibility the paper prescribes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.chunks import ChunkCodec
from ..core.config import HierarchicalConfig
from ..core.errors import MiddleboxError, StateError
from ..core.events import Event, EventCode, EventFilter
from ..core.flowspace import FlowKey, FlowPattern
from ..core.southbound import MiddleboxInterface, ProcessingCosts
from ..core.state import (
    PerFlowStateStore,
    SharedChunk,
    SharedStateSlot,
    StateChunk,
    StateRole,
)
from ..net.packet import Packet
from ..net.simulator import Simulator
from ..net.topology import Node

FULL_GRANULARITY = ("nw_proto", "nw_src", "nw_dst", "tp_src", "tp_dst")


class Verdict(enum.Enum):
    """What a middlebox decides to do with a processed packet."""

    FORWARD = "forward"
    DROP = "drop"
    CONSUME = "consume"


@dataclass
class ProcessResult:
    """Outcome of processing one packet."""

    verdict: Verdict = Verdict.FORWARD
    #: Packet to forward instead of the original (e.g. an encoded or rewritten copy).
    packet: Optional[Packet] = None
    #: Per-flow keys whose supporting or reporting state this packet updated.
    updated_flows: List[FlowKey] = field(default_factory=list)
    #: True when the packet updated shared supporting or reporting state.
    updated_shared: bool = False


@dataclass
class MiddleboxCounters:
    """Per-middlebox data-plane counters used by the evaluation."""

    packets_received: int = 0
    packets_forwarded: int = 0
    packets_dropped: int = 0
    bytes_received: int = 0
    reprocessed_packets: int = 0
    packets_held: int = 0
    #: Held packets discarded by a crash/teardown purge (they died with the
    #: instance — the chaos harness's conservation invariant accounts them).
    packets_purged: int = 0
    reprocess_events_raised: int = 0
    introspection_events_raised: int = 0
    processing_time_total: float = 0.0
    #: Pre-copy puts ignored because a newer round already installed the flow.
    stale_round_puts: int = 0

    @property
    def mean_processing_latency(self) -> float:
        if self.packets_received == 0:
            return 0.0
        return self.processing_time_total / self.packets_received


class Middlebox(Node, MiddleboxInterface):
    """Base class for all OpenMB-enabled middleboxes."""

    #: Default middlebox type string; subclasses override.
    MB_TYPE = "generic"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        costs: Optional[ProcessingCosts] = None,
        granularity: Sequence[str] = FULL_GRANULARITY,
        indexed_store: bool = False,
        compress_chunks: bool = False,
    ) -> None:
        Node.__init__(self, sim, name)
        self.mb_type = self.MB_TYPE
        self.costs = costs or ProcessingCosts()
        self.config = HierarchicalConfig()
        self.codec = ChunkCodec.for_mb_type(self.mb_type, compress=compress_chunks)
        self.support_store: PerFlowStateStore = PerFlowStateStore(tuple(granularity), indexed=indexed_store)
        self.report_store: PerFlowStateStore = PerFlowStateStore(tuple(granularity), indexed=indexed_store)
        #: Shared supporting / reporting slots; subclasses assign these when they have shared state.
        self.shared_support: Optional[SharedStateSlot] = None
        self.shared_report: Optional[SharedStateSlot] = None
        self.event_filter = EventFilter()
        self.counters = MiddleboxCounters()
        #: Flows whose exported per-flow state is flagged for re-process events.
        self._transferred_flows: set = set()
        #: Flows held by an order-preserving transfer: packets queue until release.
        self._held_flows: set = set()
        self._held_packets: Dict[FlowKey, List[Tuple[Packet, Optional[int]]]] = {}
        #: True while exported shared state is flagged for re-process events.
        self._shared_transfer_active = False
        #: True while re-processing a replayed packet (external side effects suppressed).
        self._reprocessing = False
        #: True while re-processing a replay that covers a shared-state transfer.
        self._reprocessing_shared = False
        #: Simulated time until which an API call keeps the middlebox slightly slower.
        self._api_busy_until = 0.0
        self._event_sink: Optional[Callable[[Event], None]] = None
        #: Fixed egress port; when None the packet leaves by "the other" port.
        self.egress_port: Optional[int] = None

    # =====================================================================================
    # Subclass hooks
    # =====================================================================================

    def process_packet(self, packet: Packet) -> ProcessResult:
        """Middlebox-specific packet processing; subclasses must implement."""
        raise NotImplementedError

    def serialize_support(self, key: FlowKey, obj: object) -> object:
        """Convert a native per-flow supporting object into a chunk payload."""
        return obj

    def deserialize_support(self, key: FlowKey, payload: object) -> object:
        """Reconstruct a native per-flow supporting object from a chunk payload."""
        return payload

    def serialize_report(self, key: FlowKey, obj: object) -> object:
        """Convert a native per-flow reporting object into a chunk payload."""
        return obj

    def deserialize_report(self, key: FlowKey, payload: object) -> object:
        """Reconstruct a native per-flow reporting object from a chunk payload."""
        return payload

    def on_config_changed(self, key: str) -> None:
        """Hook invoked after the controller changes configuration state."""

    # =====================================================================================
    # Network data plane
    # =====================================================================================

    def receive(self, packet: Packet, in_port: int) -> None:
        """Packet arrival from the network: schedule processing after the per-packet cost."""
        self.counters.packets_received += 1
        self.counters.bytes_received += packet.wire_size
        cost = self.costs.packet_processing
        if self.sim.now < self._api_busy_until:
            cost *= self.costs.transfer_slowdown
        self.counters.processing_time_total += cost
        self.sim.schedule(cost, self._process_and_forward, packet, in_port)

    def _process_and_forward(self, packet: Packet, in_port: Optional[int]) -> None:
        if self._held_flows:
            key = packet.flow_key().bidirectional()
            if key in self._held_flows:
                # An order-preserving transfer owns this flow: queue the packet
                # until the controller has replayed the flow's buffered events
                # and sent TRANSFER_RELEASE.
                self.counters.packets_held += 1
                self._held_packets.setdefault(key, []).append((packet, in_port))
                return
        result = self.process_packet(packet)
        self._after_processing(packet, result, in_port=in_port, suppress_side_effects=False)

    def _after_processing(
        self,
        packet: Packet,
        result: ProcessResult,
        *,
        in_port: Optional[int],
        suppress_side_effects: bool,
    ) -> None:
        # Dirty tracking (pre-copy transfers): flows the packet updated are
        # marked dirty so the next delta round resends their chunks.  Updates
        # applied through in-place mutation of objects handed out by the store
        # leave no store-level trace, hence the explicit marking here.
        self._mark_dirty_flows(result)
        # Re-process events: raised when the packet updated transferred state.
        if not suppress_side_effects:
            self._maybe_raise_reprocess(packet, result)
        # External side effects (forwarding) are suppressed for replayed packets.
        if suppress_side_effects:
            return
        if result.verdict is Verdict.FORWARD:
            outgoing = result.packet or packet
            out_port = self._choose_output_port(in_port)
            if out_port is not None:
                self.counters.packets_forwarded += 1
                self.send_out(out_port, outgoing)
            else:
                self.counters.packets_dropped += 1
        elif result.verdict is Verdict.DROP:
            self.counters.packets_dropped += 1
        # CONSUME: the middlebox is the packet's destination; nothing to forward.

    def _choose_output_port(self, in_port: Optional[int]) -> Optional[int]:
        if self.egress_port is not None:
            return self.egress_port
        if in_port is None:
            return next(iter(self.ports), None)
        other_ports = [port for port in self.ports if port != in_port]
        if not other_ports:
            return None
        return other_ports[0]

    def _mark_dirty_flows(self, result: ProcessResult) -> None:
        """Mark the packet's updated flows dirty in every tracking store.

        A flow is only marked in a store that actually holds state for it, so
        a packet updating reporting state does not force a pointless resend of
        the flow's (untouched) supporting chunk.
        """
        if not result.updated_flows:
            return
        for store in (self.support_store, self.report_store):
            if not store.tracking_dirty:
                continue
            for key in result.updated_flows:
                if key in store:
                    store.mark_dirty(key)

    def _maybe_raise_reprocess(self, packet: Packet, result: ProcessResult) -> None:
        keys_in_transfer = [
            key for key in result.updated_flows if key.bidirectional() in self._transferred_flows
        ]
        shared_in_transfer = result.updated_shared and self._shared_transfer_active
        if not keys_in_transfer and not shared_in_transfer:
            return
        event = Event(
            mb_name=self.name,
            code=EventCode.REPROCESS,
            key=keys_in_transfer[0] if keys_in_transfer else None,
            packet=packet,
            raised_at=self.sim.now,
            # ``shared`` tells the re-processing middlebox that the packet updated
            # shared state whose transfer (clone/merge) is in progress, so the
            # replay must apply the shared-state update too (the source's copy of
            # that update will not survive the transfer).
            shared=shared_in_transfer,
        )
        self.counters.reprocess_events_raised += 1
        self._emit(event)

    # =====================================================================================
    # Events
    # =====================================================================================

    def set_event_sink(self, sink: Callable[[Event], None]) -> None:
        self._event_sink = sink

    def _emit(self, event: Event) -> None:
        if self._event_sink is not None:
            self._event_sink(event)

    def raise_event(self, code: str, key: Optional[FlowKey] = None, **values: object) -> bool:
        """Raise an introspection event if the current filter allows it.

        Returns True when the event was generated.  Subclasses call this at the
        points where they create or update notable state (the paper suggests
        "points where information is written to a log file").
        """
        event = Event(
            mb_name=self.name,
            code=code,
            key=key,
            values=dict(values),
            raised_at=self.sim.now,
        )
        if not self.event_filter.allows(event, now=self.sim.now):
            return False
        self.counters.introspection_events_raised += 1
        self._emit(event)
        return True

    def enable_events(self, code: str, pattern: Optional[FlowPattern] = None, until: Optional[float] = None) -> None:
        self.event_filter.enable(code, pattern, until=until)

    def disable_events(self, code: str, pattern: Optional[FlowPattern] = None) -> None:
        self.event_filter.disable(code, pattern)

    # =====================================================================================
    # Southbound API: configuration state
    # =====================================================================================

    def get_config(self, key: str = "*") -> dict:
        return self.config.export(key)

    def set_config(self, key: str, values: list) -> None:
        self.config.set(key, values)
        self._note_api_activity(self.costs.config_op)
        self.on_config_changed(key)

    def del_config(self, key: str) -> None:
        self.config.delete(key)
        self.on_config_changed(key)

    # =====================================================================================
    # Southbound API: per-flow state
    # =====================================================================================

    def _store_for(self, role: StateRole) -> PerFlowStateStore:
        if role is StateRole.SUPPORTING:
            return self.support_store
        if role is StateRole.REPORTING:
            return self.report_store
        raise StateError(f"per-flow operations do not apply to {role.value} state")

    def _serializer_for(self, role: StateRole) -> Tuple[Callable, Callable]:
        if role is StateRole.SUPPORTING:
            return self.serialize_support, self.deserialize_support
        return self.serialize_report, self.deserialize_report

    def get_perflow(
        self,
        role: StateRole,
        pattern: FlowPattern,
        *,
        mark_transfer: bool = False,
        track_dirty: bool = False,
        compress: Optional[bool] = None,
    ) -> List[StateChunk]:
        """Export sealed chunks matching *pattern*; optionally mark or track them.

        Materialises :meth:`iter_perflow`'s stream — kept for callers that
        want the full list (tests, small stores).  The southbound agent pumps
        the iterator directly so a million-flow export never holds a
        million-chunk list.
        """
        return list(
            self.iter_perflow(
                role,
                pattern,
                mark_transfer=mark_transfer,
                track_dirty=track_dirty,
                compress=compress,
            )
        )

    def iter_perflow(
        self,
        role: StateRole,
        pattern: FlowPattern,
        *,
        mark_transfer: bool = False,
        track_dirty: bool = False,
        compress: Optional[bool] = None,
    ) -> Iterator[StateChunk]:
        """Stream sealed chunks matching *pattern*; optionally mark or track them.

        Setup is eager (it happens at the call, before the first chunk is
        pulled): ``track_dirty`` arms the store's dirty tracking at this
        instant — the pre-copy bulk round — so every mutation from now on is
        either inside the snapshot stream or in the dirty set.  Chunks are
        sealed lazily as the consumer pulls them, so the resident overhead is
        one chunk, not the full export; an update that lands before a flow's
        chunk is sealed is simply included in that chunk.  With
        ``mark_transfer`` each flow is flagged for re-process events at the
        instant its chunk is sealed (the freeze is per flow: an already-sealed
        flow's packets raise events, a not-yet-sealed flow keeps processing
        and its chunk carries the result).  *compress* overrides the codec's
        payload compression for this export (a :class:`TransferSpec`
        negotiation).

        API busy time accrues per sealed chunk from the stream's start, so
        the total matches the one-shot accounting whatever the pull pacing.
        """
        store = self._store_for(role)
        serialize, _ = self._serializer_for(role)
        if track_dirty:
            # Arm tracking before the query so every mutation after this
            # instant is either inside the snapshot or in the dirty set.
            store.begin_dirty_tracking()
        start = self.sim.now
        self._note_api_activity(self.costs.get_base)
        matches = store.iter_matching(pattern)

        def generate() -> Iterator[StateChunk]:
            sealed = 0
            for key, obj in matches:
                payload = serialize(key, obj)
                chunk = self.codec.seal_perflow(key, payload, role, compress=compress)
                if mark_transfer:
                    self._transferred_flows.add(key.bidirectional())
                sealed += 1
                self._note_api_activity_absolute(
                    start + self.costs.get_base + self.costs.get_per_chunk * sealed
                )
                yield chunk

        return generate()

    def get_perflow_dirty(
        self,
        role: StateRole,
        pattern: FlowPattern,
        *,
        mark_transfer: bool = False,
        compress: Optional[bool] = None,
    ) -> List[StateChunk]:
        """Export chunks for the flows dirtied since the last drain (delta round).

        Materialises :meth:`iter_perflow_dirty`'s stream; see there for the
        drain/freeze semantics.
        """
        return list(
            self.iter_perflow_dirty(
                role, pattern, mark_transfer=mark_transfer, compress=compress
            )
        )

    def iter_perflow_dirty(
        self,
        role: StateRole,
        pattern: FlowPattern,
        *,
        mark_transfer: bool = False,
        compress: Optional[bool] = None,
    ) -> Iterator[StateChunk]:
        """Stream chunks for the flows dirtied since the last drain (delta round).

        The drain is eager: the dirty set is taken and cleared at the call
        instant, out-of-pattern flows are re-marked for whoever owns them, and
        — with ``mark_transfer``, the final stop-and-copy — every flow
        matching *pattern* is flagged for re-process events and dirty tracking
        stops *before* the first chunk streams out.  The freeze therefore
        happens at the call, exactly as in the one-shot form; a frozen flow's
        state cannot change while the stream is being pulled (updates surface
        as events), so lazy sealing observes the same bytes.  In non-final
        rounds an update landing mid-stream is included in the flow's chunk
        *and* re-dirties it for the next round — a harmless resend, never a
        loss.  Chunks for flows removed between drain and pull are skipped.
        """
        store = self._store_for(role)
        serialize, _ = self._serializer_for(role)
        drained: List[FlowKey] = []
        for key in store.drain_dirty():
            if not pattern.matches_either_direction(key):
                store.mark_dirty(key)  # not ours to move; keep it dirty
                continue
            drained.append(key)
        if mark_transfer:
            for key, _ in store.iter_matching(pattern):
                self._transferred_flows.add(key.bidirectional())
            store.end_dirty_tracking()
        start = self.sim.now
        self._note_api_activity(self.costs.get_base)

        def generate() -> Iterator[StateChunk]:
            sealed = 0
            for key in drained:
                obj = store.get(key)
                if obj is None:
                    continue  # removed after it was dirtied; nothing to resend
                chunk = self.codec.seal_perflow(key, serialize(key, obj), role, compress=compress)
                sealed += 1
                self._note_api_activity_absolute(
                    start + self.costs.get_base + self.costs.get_per_chunk * sealed
                )
                yield chunk

        return generate()

    def dirty_perflow_count(self, role: StateRole, pattern: Optional[FlowPattern] = None) -> int:
        """Flows dirtied (and not yet drained) in the store of the given role.

        With *pattern* only matching flows are counted — the controller's
        convergence signal for a pattern-restricted pre-copy move must not be
        inflated by background traffic on flows the move will never transfer.
        """
        store = self._store_for(role)
        if pattern is None or pattern.is_wildcard:
            return store.dirty_count
        return sum(1 for key in store.dirty_keys() if pattern.matches_either_direction(key))

    def put_perflow(self, chunk: StateChunk, *, round: Optional[Tuple[int, ...]] = None) -> None:
        """Install one sealed chunk; *round* is the pre-copy round tag, if any.

        Round tags order pre-copy installs per (role, flow) — the tag lives in
        the role's store, pruned together with the flow's state: a put tagged
        with an older round than the one already installed is ignored, so a
        stale round can never overwrite newer destination state.  Untagged
        puts (snapshot transfers) always install.
        """
        store = self._store_for(chunk.role)
        if round is not None and not store.install_round(chunk.key, tuple(round)):
            self.counters.stale_round_puts += 1
            self._note_api_activity(self.costs.put_per_chunk)
            return
        _, deserialize = self._serializer_for(chunk.role)
        payload = self.codec.unseal_perflow(chunk)
        obj = deserialize(chunk.key, payload)
        store.put(chunk.key, obj)
        self._note_api_activity(self.costs.put_per_chunk)

    def del_perflow(self, role: StateRole, pattern: FlowPattern) -> int:
        store = self._store_for(role)
        removed = store.remove_matching(pattern)
        for key, obj in removed:
            self.on_perflow_deleted(role, key, obj)
            self._transferred_flows.discard(key.bidirectional())
        return len(removed)

    def on_perflow_deleted(self, role: StateRole, key: FlowKey, obj: object) -> None:
        """Hook invoked for each per-flow entry removed by a controller delete.

        The default does nothing; the IDS uses it to mark connections as moved
        so their removal does not produce anomaly log entries (the paper's
        "moved flag").
        """

    # =====================================================================================
    # Southbound API: shared state
    # =====================================================================================

    def _shared_slot(self, role: StateRole) -> Optional[SharedStateSlot]:
        if role is StateRole.SUPPORTING:
            return self.shared_support
        if role is StateRole.REPORTING:
            return self.shared_report
        raise StateError(f"shared operations do not apply to {role.value} state")

    def serialize_shared(self, role: StateRole, value: object) -> object:
        """Convert native shared state into a chunk payload (subclasses may override)."""
        return value

    def deserialize_shared(self, role: StateRole, payload: object) -> object:
        """Reconstruct native shared state from a chunk payload (subclasses may override)."""
        return payload

    def get_shared(self, role: StateRole, *, mark_transfer: bool = False) -> Optional[SharedChunk]:
        slot = self._shared_slot(role)
        if slot is None:
            return None
        payload = self.serialize_shared(role, slot.clone_value())
        chunk = self.codec.seal_shared(payload, role)
        if mark_transfer:
            self._shared_transfer_active = True
        self._note_api_activity(self.costs.shared_get_base + self.costs.shared_get_per_byte * chunk.size)
        return chunk

    def put_shared(self, chunk: SharedChunk) -> None:
        slot = self._shared_slot(chunk.role)
        if slot is None:
            raise StateError(f"{self.name} has no shared {chunk.role.value} state to import into")
        payload = self.codec.unseal_shared(chunk)
        value = self.deserialize_shared(chunk.role, payload)
        slot.merge_in(value)
        self._note_api_activity(self.costs.shared_put_base + self.costs.shared_put_per_byte * chunk.size)

    # =====================================================================================
    # Southbound API: statistics, transfers, re-processing
    # =====================================================================================

    def state_stats(self, pattern: FlowPattern) -> dict:
        support_matches = self.support_store.query(pattern)
        report_matches = self.report_store.query(pattern)
        return {
            "perflow_supporting": len(support_matches),
            "perflow_reporting": len(report_matches),
            "shared_supporting": 1 if self.shared_support is not None else 0,
            "shared_reporting": 1 if self.shared_report is not None else 0,
            "config_keys": len(self.config.keys()),
        }

    def end_transfer(self) -> None:
        # Note: per-flow packet holds are deliberately NOT cleared here.  They
        # belong to an order-preserving move targeting this middlebox, and a
        # TRANSFER_END can arrive from an unrelated operation (a clone/merge
        # whose source this middlebox is); only the owning move's per-flow
        # TRANSFER_RELEASE (or its failure cleanup) may lift a hold.
        # Pre-copy dirty tracking is likewise left alone — it belongs to an
        # in-flight move from this middlebox and is ended by that move's own
        # final round (or its scoped failure cleanup, end_dirty_tracking).
        self._transferred_flows.clear()
        self._shared_transfer_active = False

    def end_dirty_tracking(self) -> None:
        """Stop pre-copy dirty tracking on both stores (scoped failure cleanup).

        Sent by a pre-copy move that failed mid-round, so the source stops
        accumulating dirt for a transfer that will never drain it.  Touches
        nothing else: transfer markers, holds, and install tags owned by
        concurrent operations survive.
        """
        self.support_store.end_dirty_tracking()
        self.report_store.end_dirty_tracking()

    def end_shared_transfer(self) -> None:
        """Clear only the shared-transfer flag (a finalizing clone/merge).

        Clone/merge operations never arm per-flow markers, so their
        post-quiescence TRANSFER_END must not clear markers a concurrent
        move's freeze depends on.
        """
        self._shared_transfer_active = False

    def hold_flows(self, keys: List[FlowKey]) -> None:
        """Start queueing fresh packets for *keys* (order-preserving puts)."""
        for key in keys:
            self._held_flows.add(key.bidirectional())

    def release_flows(self, keys: List[FlowKey]) -> None:
        """Per-flow TRANSFER_RELEASE: stop transfer involvement for *keys*.

        Clears the flows' transfer markers (they stop raising re-process
        events — the early-release optimization at a source) and lifts any
        packet hold, processing queued packets in arrival order (the
        order-preserving release at a destination).
        """
        for key in keys:
            canonical = key.bidirectional()
            self._transferred_flows.discard(canonical)
            self._held_flows.discard(canonical)
            self.support_store.clear_install_round(canonical)
            self.report_store.clear_install_round(canonical)
            for packet, in_port in self._held_packets.pop(canonical, []):
                self._process_and_forward(packet, in_port)

    def purge_transfer_state(self) -> int:
        """Crash/teardown cleanup: drop every trace of transfer involvement.

        Called by the controller when this instance is unregistered or
        declared dead while operations touching it are still in flight.  The
        releases and scoped TRANSFER_ENDs those operations owe this instance
        can no longer be delivered, so the cleanup happens locally instead:
        packet holds are lifted (their queued packets are *discarded* — the
        instance is gone, and processing them now would fabricate updates),
        pre-copy install-round tags are pruned from both stores, dirty
        tracking stops, and transfer markers are cleared.  Returns the number
        of queued packets discarded.
        """
        dropped = sum(len(queued) for queued in self._held_packets.values())
        self._held_packets.clear()
        self._held_flows.clear()
        self._transferred_flows.clear()
        self._shared_transfer_active = False
        for store in (self.support_store, self.report_store):
            store.end_dirty_tracking()
            store.clear_install_rounds()
        if dropped:
            self.counters.packets_purged += dropped
            self.counters.packets_dropped += dropped
        return dropped

    def reprocess(self, packet: Packet, *, shared: bool = False) -> None:
        """Re-process a replayed packet, updating state but suppressing side effects.

        ``shared`` is True when the replay belongs to a shared-state transfer
        (clone/merge): in that case the replay must also apply shared-state
        updates, because the source middlebox's own copies of those updates are
        made after the transferred snapshot and will not survive the transfer.
        """
        self.counters.reprocessed_packets += 1
        self._reprocessing = True
        self._reprocessing_shared = shared
        try:
            result = self.process_packet(packet)
        finally:
            self._reprocessing = False
            self._reprocessing_shared = False
        self._after_processing(packet, result, in_port=None, suppress_side_effects=True)

    def perflow_count(self, role: StateRole) -> int:
        return len(self._store_for(role))

    # =====================================================================================
    # Helpers for subclasses and the southbound agent
    # =====================================================================================

    @property
    def is_reprocessing(self) -> bool:
        """True while the middlebox is handling a replayed packet."""
        return self._reprocessing

    @property
    def reprocess_covers_shared(self) -> bool:
        """True while handling a replay that must also update shared state."""
        return self._reprocessing_shared

    def transferred_flow_count(self) -> int:
        return len(self._transferred_flows)

    def _note_api_activity(self, duration: float) -> None:
        """Record that an API call occupies the middlebox until ``now + duration``.

        While API activity is pending, packet processing latency rises by the
        configured slowdown factor (the paper's ≈2 % increase during gets).
        """
        self._api_busy_until = max(self._api_busy_until, self.sim.now + duration)

    def _note_api_activity_absolute(self, until: float) -> None:
        """Extend API busy time to an absolute instant.

        Streaming exports charge per sealed chunk relative to the *stream's*
        start, so the accumulated busy horizon is the same whether a consumer
        pulls the whole export at once or pumps it in bounded batches.
        """
        self._api_busy_until = max(self._api_busy_until, until)

    def launch_like(self, other: "Middlebox") -> None:
        """Copy configuration from another instance (used when launching replicas)."""
        if other.mb_type != self.mb_type:
            raise MiddleboxError(
                f"cannot launch {self.name} ({self.mb_type}) from {other.name} ({other.mb_type})"
            )
        self.config = other.config.clone()
        self.on_config_changed("*")
