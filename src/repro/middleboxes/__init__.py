"""Middlebox substrate: OpenMB-enabled middleboxes built from scratch."""

from .base import FULL_GRANULARITY, Middlebox, MiddleboxCounters, ProcessResult, Verdict
from .dummy import DummyMiddlebox
from .firewall import ConnectionEntry, Firewall, FirewallRule
from .ids import IDS, ConnLogEntry, Connection, HttpLogEntry, HttpTransaction, ScanTable
from .loadbalancer import Assignment, LoadBalancer
from .monitor import FlowRecord, MonitorStats, PassiveMonitor, combined_statistics
from .nat import NAT, NatMapping
from .re import (
    CHUNK_SIZE,
    DecoderCacheState,
    EncoderCacheState,
    PacketCache,
    REDecoder,
    REEncoder,
)

__all__ = [
    "FULL_GRANULARITY",
    "Middlebox",
    "MiddleboxCounters",
    "ProcessResult",
    "Verdict",
    "DummyMiddlebox",
    "ConnectionEntry",
    "Firewall",
    "FirewallRule",
    "IDS",
    "ConnLogEntry",
    "Connection",
    "HttpLogEntry",
    "HttpTransaction",
    "ScanTable",
    "Assignment",
    "LoadBalancer",
    "FlowRecord",
    "MonitorStats",
    "PassiveMonitor",
    "combined_statistics",
    "NAT",
    "NatMapping",
    "CHUNK_SIZE",
    "DecoderCacheState",
    "EncoderCacheState",
    "PacketCache",
    "REDecoder",
    "REEncoder",
]
