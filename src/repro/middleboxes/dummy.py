"""Dummy middlebox used to benchmark the controller in isolation.

The paper's controller-performance experiments (section 8.3, Figures 10a/10b)
use "dummy MBs that simply replay traces of past state in response to gets,
send acks in response to puts, and infinitely generate events during the
lifetime of the experiment", with uniformly small state (202 bytes) and events
(128 bytes).  :class:`DummyMiddlebox` reproduces that: it pre-populates a
configurable number of fixed-size per-flow chunks and can generate a steady
stream of re-process events, so controller timing is isolated from the cost of
real middlebox logic.
"""

from __future__ import annotations

from typing import Optional

from ..core.events import Event, EventCode
from ..core.flowspace import FlowKey
from ..core.southbound import ProcessingCosts
from ..net.packet import Packet, tcp_packet
from ..net.simulator import Simulator
from .base import Middlebox, ProcessResult, Verdict

#: Paper values: state chunks of 202 bytes, events of 128 bytes.
PAPER_STATE_BYTES = 202
PAPER_EVENT_PAYLOAD_BYTES = 64


class DummyMiddlebox(Middlebox):
    """A middlebox whose only job is to source and sink state and events."""

    MB_TYPE = "dummy"

    #: Near-zero middlebox-side costs so measured time is controller + channel time.
    DEFAULT_COSTS = ProcessingCosts(
        packet_processing=1e-6,
        get_base=1e-6,
        get_scan_per_entry=0.0,
        get_per_chunk=5e-6,
        put_per_chunk=5e-6,
        del_per_chunk=1e-6,
        shared_get_base=1e-6,
        shared_put_base=1e-6,
        config_op=1e-6,
        reprocess_packet=1e-6,
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        chunk_count: int = 0,
        chunk_bytes: int = PAPER_STATE_BYTES,
        costs: Optional[ProcessingCosts] = None,
        subnet: str = "10.1",
    ) -> None:
        super().__init__(sim, name, costs=costs or ProcessingCosts(**vars(self.DEFAULT_COSTS)))
        self.chunk_bytes = chunk_bytes
        self.subnet = subnet
        self.events_generated = 0
        if chunk_count:
            self.populate(chunk_count)

    # -- population -------------------------------------------------------------------------------

    def flow_key_for(self, index: int) -> FlowKey:
        """Deterministic flow key for the *index*-th synthetic chunk."""
        return FlowKey(
            nw_proto=6,
            nw_src=f"{self.subnet}.{(index // 250) % 250 + 1}.{index % 250 + 1}",
            nw_dst="192.0.2.10",
            tp_src=1024 + (index % 60_000),
            tp_dst=80,
        )

    def populate(self, count: int) -> None:
        """Create *count* per-flow supporting and reporting entries of fixed size."""
        for index in range(count):
            key = self.flow_key_for(index)
            payload = {"index": index, "data": "x" * self.chunk_bytes}
            self.support_store.put(key, dict(payload))
            self.report_store.put(key, {"index": index, "packets": index})

    # -- packet processing (rarely used for the dummy) -----------------------------------------------

    def process_packet(self, packet: Packet) -> ProcessResult:
        key = packet.flow_key()
        record = self.support_store.get_or_create(key, lambda: {"index": -1, "data": ""})
        record["packets"] = record.get("packets", 0) + 1
        return ProcessResult(verdict=Verdict.FORWARD, updated_flows=[key])

    # -- event generation ---------------------------------------------------------------------------

    def generate_reprocess_event(self, index: int = 0) -> Event:
        """Emit one synthetic re-process event (as if a packet updated moved state)."""
        key = self.flow_key_for(index)
        packet = tcp_packet(key.nw_src, key.nw_dst, key.tp_src, key.tp_dst, b"e" * PAPER_EVENT_PAYLOAD_BYTES)
        event = Event(
            mb_name=self.name,
            code=EventCode.REPROCESS,
            key=key,
            packet=packet,
            raised_at=self.sim.now,
        )
        self.events_generated += 1
        self.counters.reprocess_events_raised += 1
        self._emit(event)
        return event

    def generate_events_at_rate(self, rate_per_second: float, duration: float) -> int:
        """Schedule a steady stream of re-process events; returns how many were scheduled."""
        if rate_per_second <= 0 or duration <= 0:
            return 0
        interval = 1.0 / rate_per_second
        count = int(duration * rate_per_second)
        for index in range(count):
            self.sim.schedule(interval * (index + 1), self.generate_reprocess_event, index % max(1, len(self.support_store)))
        return count

    def drive_traffic_at_rate(self, rate_per_second: float, duration: float, *, flows: Optional[int] = None) -> int:
        """Schedule live packets that update this middlebox's per-flow state.

        Unlike :meth:`generate_events_at_rate` — which fabricates re-process
        events directly — this drives the real data plane: each packet goes
        through :meth:`receive`/``process_packet``, incrementing the flow's
        ``packets`` counter.  During a transfer that makes the updated flows
        *dirty* (pre-copy rounds) or raises re-process events (after a
        snapshot get / the pre-copy freeze), so it is the load generator for
        the move-under-load benchmarks.  Packets round-robin over the first
        ``flows`` populated flows (default: all of them); returns the number
        of packets scheduled.
        """
        if rate_per_second <= 0 or duration <= 0:
            return 0
        pool = flows if flows is not None else max(1, len(self.support_store))
        interval = 1.0 / rate_per_second
        count = int(duration * rate_per_second)
        for index in range(count):
            key = self.flow_key_for(index % pool)
            packet = tcp_packet(
                key.nw_src, key.nw_dst, key.tp_src, key.tp_dst, b"t" * PAPER_EVENT_PAYLOAD_BYTES
            )
            self.sim.schedule(interval * (index + 1), self.receive, packet, 0)
        return count
