"""Testing harnesses: deterministic chaos injection + differential runtime equivalence."""

from .chaos import (
    FAULT_PROFILES,
    FED_AUX,
    FED_DOMAINS,
    ChaosMiddlebox,
    ChaosResult,
    ChaosSpec,
    InvariantViolation,
    run_chaos,
    run_federated_chaos,
)
from .equivalence import EquivalenceReport, compare_results, run_equivalence

__all__ = [
    "FAULT_PROFILES",
    "FED_AUX",
    "FED_DOMAINS",
    "ChaosMiddlebox",
    "ChaosResult",
    "ChaosSpec",
    "EquivalenceReport",
    "InvariantViolation",
    "compare_results",
    "run_chaos",
    "run_equivalence",
    "run_federated_chaos",
]
