"""Testing harnesses: deterministic chaos injection for the control plane."""

from .chaos import (
    FAULT_PROFILES,
    FED_AUX,
    FED_DOMAINS,
    ChaosMiddlebox,
    ChaosResult,
    ChaosSpec,
    InvariantViolation,
    run_chaos,
    run_federated_chaos,
)

__all__ = [
    "FAULT_PROFILES",
    "FED_AUX",
    "FED_DOMAINS",
    "ChaosMiddlebox",
    "ChaosResult",
    "ChaosSpec",
    "InvariantViolation",
    "run_chaos",
    "run_federated_chaos",
]
