"""Testing harnesses: deterministic chaos injection for the control plane."""

from .chaos import (
    FAULT_PROFILES,
    ChaosMiddlebox,
    ChaosResult,
    ChaosSpec,
    InvariantViolation,
    run_chaos,
)

__all__ = [
    "FAULT_PROFILES",
    "ChaosMiddlebox",
    "ChaosResult",
    "ChaosSpec",
    "InvariantViolation",
    "run_chaos",
]
