"""Differential runtime equivalence: same scenario, both runtimes, same observables.

The wall-clock :class:`~repro.runtime.RealtimeRuntime` is only trustworthy if
running a scenario on it produces the *same system behaviour* as the
deterministic :class:`~repro.net.simulator.Simulator` — otherwise its
benchmark numbers describe a different system.  This module is the proof
harness: :func:`run_equivalence` executes one :class:`ChaosSpec` scenario on
each runtime and compares every **observable outcome**:

* operation outcome (completed / failed) and clean termination (the
  ``finalized`` future resolved) — invariant on both runtimes;
* the four chaos invariants (termination, no lost updates, no reordering,
  state conservation) must hold on both;
* **final state maps**: under ``loss_free`` and ``order_preserving`` the
  surviving owner must hold exactly the same per-flow sequence sets on both
  runtimes, and the source must be equally empty.  Under ``no_guarantee``
  the state maps are legitimately timing-dependent (updates arriving during
  the unsynchronised window are allowed to be lost), so only termination,
  conservation, and the owner-holds-a-subset property are compared;
* per-run internal consistency: under ``order_preserving`` each flow's
  journal must be strictly increasing *within each run*.

What is deliberately **not** compared: timings (durations, freeze windows,
settle times), event counts (``executed_events`` is schedule-dependent),
retransmission counters, and pre-copy round counts — all of these genuinely
differ between a tick clock and a wall clock, and asserting them equal would
either fail spuriously or force the realtime runtime to fake determinism.

Scenarios run with the ``clean`` fault profile: fault injection draws from a
seeded RNG *in delivery order*, which differs across runtimes by design, so a
faulted differential comparison would compare two different fault sequences.
Fault behaviour on the realtime runtime is covered by the soak test instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..net.simulator import Simulator
from ..runtime import RuntimeConfig
from .chaos import DST, SRC, ChaosResult, ChaosSpec, run_chaos


@dataclass
class EquivalenceReport:
    """The outcome of one differential run: both results plus any mismatches."""

    spec: ChaosSpec
    simulated: ChaosResult
    realtime: ChaosResult
    #: Human-readable descriptions of every observable that differed.
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every compared observable matched."""
        return not self.mismatches

    def assert_ok(self) -> None:
        """Raise AssertionError listing every mismatch (for pytest use)."""
        if self.mismatches:
            lines = "\n".join(f"  - {mismatch}" for mismatch in self.mismatches)
            raise AssertionError(f"runtime equivalence broken for {self.spec}:\n{lines}")


def _seq_sets(state: Dict[str, List[int]]) -> Dict[str, frozenset]:
    """Collapse a final-state map to per-flow seq *sets* (order is checked per run)."""
    return {flow: frozenset(seqs) for flow, seqs in state.items() if seqs}


def _check_monotonic(result: ChaosResult, runtime_name: str, mismatches: List[str]) -> None:
    """Order-preserving runs: every journal must be strictly increasing per run."""
    for name, flows in result.final_state.items():
        for flow, seqs in flows.items():
            if any(later <= earlier for earlier, later in zip(seqs, seqs[1:])):
                mismatches.append(
                    f"[{runtime_name}] {name} journal for {flow} not strictly increasing: {seqs}"
                )


def compare_results(spec: ChaosSpec, simulated: ChaosResult, realtime: ChaosResult) -> EquivalenceReport:
    """Compare the observable outcomes of the two runs of *spec*."""
    report = EquivalenceReport(spec=spec, simulated=simulated, realtime=realtime)
    mismatches = report.mismatches

    for runtime_name, result in (("simulated", simulated), ("realtime", realtime)):
        for violation in result.violations:
            mismatches.append(f"[{runtime_name}] invariant violated: {violation}")

    if simulated.outcome != realtime.outcome:
        mismatches.append(
            f"operation outcome differs: simulated={simulated.outcome!r} realtime={realtime.outcome!r}"
        )

    if spec.guarantee == "order_preserving":
        _check_monotonic(simulated, "simulated", mismatches)
        _check_monotonic(realtime, "realtime", mismatches)

    if spec.guarantee in ("loss_free", "order_preserving"):
        # The guarantee pins the final state exactly: every delivered update
        # survives at the owner, none remain at the source — so the state
        # maps must agree across runtimes, flow by flow, seq set by seq set.
        for name in sorted(set(simulated.final_state) | set(realtime.final_state)):
            sim_state = _seq_sets(simulated.final_state.get(name, {}))
            real_state = _seq_sets(realtime.final_state.get(name, {}))
            if sim_state != real_state:
                only_sim = {flow: sorted(seqs - real_state.get(flow, frozenset())) for flow, seqs in sim_state.items()}
                only_real = {flow: sorted(seqs - sim_state.get(flow, frozenset())) for flow, seqs in real_state.items()}
                mismatches.append(
                    f"final state of {name} differs: only-simulated={ {f: s for f, s in only_sim.items() if s} } "
                    f"only-realtime={ {f: s for f, s in only_real.items() if s} }"
                )
    else:
        # no_guarantee: losses during the unsynchronised window are timing-
        # dependent and legitimately differ.  Still: nothing may be
        # fabricated — each run's owner seqs must be a subset of what that
        # run's driver delivered (enforced per run by the chaos invariants),
        # and both runs must have handed the source's journals off.
        for runtime_name, result in (("simulated", simulated), ("realtime", realtime)):
            if result.outcome == "completed":
                src_left = sum(len(seqs) for seqs in result.final_state.get(SRC, {}).values())
                if src_left:
                    mismatches.append(f"[{runtime_name}] source retained {src_left} seqs after a completed move")

    return report


def run_equivalence(spec: ChaosSpec, *, realtime_config: Optional[RuntimeConfig] = None) -> EquivalenceReport:
    """Run *spec* on both runtimes and compare observable outcomes.

    The simulated run uses a fresh default :class:`Simulator`; the realtime
    run uses *realtime_config* (default: ``RuntimeConfig(mode="realtime")``)
    and closes its runtime afterwards.  Only ``clean``-profile specs are
    accepted — see the module docstring for why faulted scenarios cannot be
    differentially compared.
    """
    if spec.profile != "clean":
        raise ValueError(
            f"differential comparison requires the clean fault profile, got {spec.profile!r}"
        )
    simulated = run_chaos(spec, runtime=Simulator())
    config = realtime_config or RuntimeConfig(mode="realtime")
    runtime = config.create()
    try:
        realtime = run_chaos(spec, runtime=runtime)
    finally:
        runtime.close()
    return compare_results(spec, simulated, realtime)


__all__ = ["EquivalenceReport", "compare_results", "run_equivalence", "DST", "SRC"]
