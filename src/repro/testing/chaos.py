"""Deterministic seeded chaos harness for the OpenMB control plane.

The paper's guarantees — loss-free and order-preserving state transfers — are
only meaningful if they hold when the control channel and the instances
misbehave.  This module wraps a complete move-under-load scenario (controller,
source/destination middleboxes, live traffic) with:

* **fault injection** — per-channel seeded
  :class:`~repro.core.channel.FaultPlan` (drops, duplicates, latency jitter,
  reordering) with the reliable delivery layer enabled;
* **scripted crashes** — kill the source or destination at a simulated time
  or once a given pre-copy round has finished, discovered either by immediate
  declaration or the controller's heartbeat liveness sweep; optionally retry
  the move against a registered standby;
* **invariant checking** — after the run, four global invariants are
  evaluated and any violation is reported:

  1. **termination** — every operation reaches a terminal state (completed or
     cleanly failed, with its ``finalized`` future resolved) within the
     simulated time limit;
  2. **no lost updates** — under ``loss_free`` (and ``order_preserving``) the
     surviving owner of the state holds *every* sequence number the traffic
     driver delivered, exactly once (exactly-once also covers retransmitted
     puts and replays: the reliable layer must dedup them);
  3. **no reordering** — under ``order_preserving`` each flow's observed
     sequence numbers are strictly increasing at the destination, even though
     traffic is re-routed to it mid-transfer;
  4. **state conservation** — no instance leaks packet holds, queued packets,
     armed dirty tracking, or orphaned ``(op_id, round)`` install tags, and a
     failed move leaves the source holding all of its state.

Everything is driven by **one** ``random.Random(seed)``: channel fault seeds
are derived from it, the traffic schedule is fixed, and the simulator is
deterministic, so a scenario reproduces bit for bit from its
:class:`ChaosSpec` alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core import ControllerConfig, MBController, NorthboundAPI
from ..core.channel import ControlChannel, FaultPlan
from ..core.events import EventCode
from ..core.flowspace import FlowKey, FlowPattern
from ..core.transfer import TransferGuarantee, TransferMode, TransferSpec
from ..federation import Federation, FederationConfig, GossipConfig
from ..middleboxes.base import ProcessResult, Verdict
from ..middleboxes.dummy import DummyMiddlebox
from ..net.flowtable import Action, FlowRule
from ..net.links import LinkFaultPlan
from ..net.packet import tcp_packet
from ..net.protection import ProtectionConfig
from ..net.simulator import Simulator
from ..net.switch import Switch
from ..net.topology import Host, Topology

#: Named fault profiles for the chaos matrix.  ``lossy`` is the acceptance
#: profile from the issue: 1 % control-message drop plus up-to-2x latency
#: jitter; ``chaotic`` adds duplicates and reordering on top.
FAULT_PROFILES: Dict[str, Optional[Dict[str, float]]] = {
    "clean": None,
    "lossy": {"drop": 0.01, "jitter": 2.0},
    "jittery": {"jitter": 4.0, "reorder": 0.05},
    "chaotic": {"drop": 0.02, "duplicate": 0.02, "jitter": 2.0, "reorder": 0.02},
}

#: Named *data-plane* fault profiles: loss/corruption/reordering applied to
#: the switch-to-switch hop live traffic crosses on its way to an instance
#: (the path is protected LinkGuardian-style, so the transfer above must see
#: none of it).  Rates are per frame on that hop.
DATA_PROFILES: Dict[str, Optional[Dict[str, float]]] = {
    "clean": None,
    "lossy-data-plane": {"loss": 0.02, "corruption": 0.01, "reorder": 0.03},
    "reordering-data-plane": {"corruption": 1e-3, "reorder": 0.1},
}

SRC = "chaos-src"
DST = "chaos-dst"
STANDBY = "chaos-standby"
#: The victim domain's orphan instance in federated scenarios (its home
#: controller dies; the gossip-elected survivor must adopt it intact).
FED_AUX = "chaos-fed-aux"
#: Domain names of the federated chaos topology (the workload runs in dc0;
#: dc2 is the domain whose controller the scenario kills).
FED_DOMAINS = ("chaos-dc0", "chaos-dc1", "chaos-dc2")


@dataclass
class ChaosSpec:
    """One fully determined chaos scenario (a point of the chaos matrix)."""

    seed: int = 0
    #: Transfer guarantee: ``no_guarantee`` / ``loss_free`` / ``order_preserving``.
    guarantee: str = "loss_free"
    #: Copy discipline: ``snapshot`` or ``precopy``.
    mode: str = "snapshot"
    #: Controller shards (1 = the seed's single event loop).
    shards: int = 1
    #: Fault profile name from :data:`FAULT_PROFILES`.
    profile: str = "clean"
    #: Pipeline knobs threaded into the :class:`TransferSpec`.
    batch_size: int = 1
    parallelism: int = 0
    #: Workload: per-flow state entries at the source and live packets driven
    #: through the data plane while the move runs.
    flows: int = 10
    packets: int = 40
    interval: float = 2e-4
    #: When the move is issued (leaves room for pre-move traffic).
    move_at: float = 1e-3
    #: Scripted crash: which instance dies ("src" / "dst" / None), when
    #: (a simulated time, or "after N pre-copy rounds finished"), and how the
    #: controller finds out ("declare" = immediately, "liveness" = via the
    #: heartbeat sweep).
    kill: Optional[str] = None
    kill_time: Optional[float] = None
    kill_at_round: Optional[int] = None
    detect: str = "declare"
    #: Register a standby destination and retry the move onto it on dst death.
    standby: bool = False
    #: Re-route live traffic to the destination once state is installed.
    #: Defaults to True for order-preserving scenarios (exercising the packet
    #: holds), False otherwise (None = that default).
    reroute: Optional[bool] = None
    #: Silence window the traffic driver observes around a routing flip or an
    #: instance death (sender back-off while the network reconverges).
    switch_gap: float = 8e-3
    quiescence: float = 0.02
    #: Hard simulated-time budget; blowing it is a termination violation.
    limit: float = 30.0
    #: Data-plane fault profile from :data:`DATA_PROFILES`.  When set (and
    #: not "clean"), live traffic reaches each instance over a real simulated
    #: path — host → switch ==(faulted, protected)== switch → instance —
    #: instead of being delivered synchronously, so the transfer invariants
    #: are exercised against a data plane that drops, corrupts, and reorders.
    #: Meant for non-kill scenarios: a crashed instance leaves an in-flight
    #: window the sent-journal bookkeeping deliberately does not model.
    data_profile: Optional[str] = None
    #: strict_order knob of the data path's link-local protection.
    data_strict_order: bool = True

    @property
    def reroute_enabled(self) -> bool:
        """Whether live traffic flips to the destination mid-transfer."""
        if self.reroute is not None:
            return self.reroute
        return self.guarantee == "order_preserving"

    def transfer_spec(self) -> TransferSpec:
        """The :class:`TransferSpec` this scenario's move runs under."""
        return TransferSpec(
            guarantee=TransferGuarantee(self.guarantee),
            mode=TransferMode(self.mode),
            max_rounds=2,
            dirty_threshold=2,
            batch_size=self.batch_size,
            parallelism=self.parallelism,
        )


@dataclass
class InvariantViolation:
    """One observed violation of a chaos invariant."""

    invariant: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.invariant}] {self.detail}"


@dataclass
class ChaosResult:
    """Everything a chaos run produced: outcome, violations, counters."""

    spec: ChaosSpec
    violations: List[InvariantViolation] = field(default_factory=list)
    #: Operation outcome: "completed", "failed", or "stuck".
    outcome: str = "stuck"
    error: Optional[str] = None
    #: Packets the traffic driver actually delivered (per canonical flow).
    delivered: int = 0
    #: Sequence numbers lost (only legitimate under no_guarantee).
    lost_updates: int = 0
    #: Channel-level fault/recovery counters summed across all channels.
    messages: int = 0
    drops: int = 0
    retransmits: int = 0
    dedup_discards: int = 0
    duplicates: int = 0
    #: The move retried onto the standby destination.
    retried_on_standby: bool = False
    #: Completed runs: the workload move's duration and freeze (event
    #: buffering) window in simulated seconds — benchmark reporting material.
    move_duration: Optional[float] = None
    freeze_window: Optional[float] = None
    #: Simulated time when the run settled.
    settled_at: float = 0.0
    #: Simulator callbacks executed (bit-for-bit reproducibility fingerprint).
    executed_events: int = 0
    #: Federated scenarios only: the domain elected to adopt the dead one.
    takeover_by: Optional[str] = None
    #: Federated scenarios only: surviving domains' gossip views converged.
    federation_converged: bool = False
    #: Federated scenarios only: gossip rounds the survivors ran in total.
    gossip_rounds: int = 0
    #: Data-path scenarios only: physical frames sent on the protected hops,
    #: frames the wire lost (drops + corruption), link-local retransmissions,
    #: wire-level reorder events, and frames the protection gave up on.
    data_frames: int = 0
    data_wire_losses: int = 0
    data_retransmits: int = 0
    data_reordered: int = 0
    data_abandoned: int = 0
    #: Final per-middlebox state maps: instance name -> stringified flow key
    #: -> the flow's observed seq journal.  The differential equivalence
    #: harness compares these across runtimes.
    final_state: Dict[str, Dict[str, List[int]]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every invariant held."""
        return not self.violations

    def assert_ok(self) -> None:
        """Raise AssertionError listing every violation (for pytest use)."""
        if self.violations:
            lines = "\n".join(f"  - {violation}" for violation in self.violations)
            raise AssertionError(f"chaos invariants violated for {self.spec}:\n{lines}")


class ChaosMiddlebox(DummyMiddlebox):
    """A dummy middlebox whose per-flow state records observed packet seqs.

    Every processed packet (live or replayed) appends its ``seq`` to the
    flow's supporting state, so after a transfer the harness can check the
    chaos invariants by inspecting state alone: lost updates are missing
    seqs, double-applies are repeated seqs, reordering is a non-monotonic
    seq list.  The seq journal travels inside the transferred chunk like any
    other per-flow state.
    """

    def __init__(self, sim: Simulator, name: str, *, flows: int = 0, subnet: str = "10.7", costs=None) -> None:
        super().__init__(sim, name, chunk_count=0, subnet=subnet, costs=costs)
        if flows:
            self.populate(flows)

    def populate(self, count: int) -> None:
        """Create *count* per-flow supporting entries with empty seq journals."""
        for index in range(count):
            self.support_store.put(self.flow_key_for(index), {"index": index, "seqs": []})

    def process_packet(self, packet) -> ProcessResult:
        """Append the packet's seq to its flow's journal (live and replayed)."""
        key = packet.flow_key()
        record = self.support_store.get_or_create(key, lambda: {"index": -1, "seqs": []})
        if packet.seq:
            record.setdefault("seqs", []).append(packet.seq)
        return ProcessResult(verdict=Verdict.FORWARD, updated_flows=[key])

    def flow_seqs(self) -> Dict[FlowKey, List[int]]:
        """Snapshot of every flow's observed sequence journal."""
        return {key: list(record.get("seqs", [])) for key, record in self.support_store.items()}


class _DataPath:
    """One instance's ingress path over a faulted, protected link.

    ``gen host → ingress switch ==(LinkFaultPlan, LinkGuardian)== egress
    switch → middlebox``: the middle hop carries the scenario's data-plane
    faults and runs link-local protection, the edge links are clean.  The
    traffic driver injects through :attr:`host`, so every live packet crosses
    a data plane that genuinely drops, corrupts, and reorders.
    """

    def __init__(
        self,
        sim: Simulator,
        topo: Topology,
        name: str,
        middlebox: ChaosMiddlebox,
        plan: LinkFaultPlan,
        *,
        strict_order: bool,
        index: int,
    ) -> None:
        self.host = topo.add_host(f"{name}-gen", f"10.250.{index}.1")
        ingress = topo.add_node(Switch(sim, f"{name}-in"))
        egress = topo.add_node(Switch(sim, f"{name}-out"))
        topo.add_node(middlebox)
        topo.connect(self.host, ingress)
        self.link = topo.connect(ingress, egress, faults=plan)
        self.protection = self.link.enable_protection(ProtectionConfig(strict_order=strict_order))
        topo.connect(egress, middlebox)
        ingress.install_rule(FlowRule(FlowPattern.wildcard(), [Action.output(ingress.port_to(egress))]))
        egress.install_rule(FlowRule(FlowPattern.wildcard(), [Action.output(egress.port_to(middlebox))]))


def _build_data_paths(
    sim: Simulator, spec: ChaosSpec, mbs: Dict[str, ChaosMiddlebox], master: random.Random
) -> Optional[Dict[str, _DataPath]]:
    """Build one faulted, protected ingress path per instance (or None)."""
    data_profile = DATA_PROFILES[spec.data_profile] if spec.data_profile else None
    if data_profile is None:
        return None
    topo = Topology(sim)
    paths: Dict[str, _DataPath] = {}
    for index, (name, middlebox) in enumerate(mbs.items()):
        # One fault stream per path, all seeded from the single master
        # Random — the same reproducibility contract as the control channels.
        plan = LinkFaultPlan.symmetric(master.randrange(2**31), **data_profile)
        paths[name] = _DataPath(
            sim, topo, name, middlebox, plan, strict_order=spec.data_strict_order, index=index
        )
    return paths


class _TrafficDriver:
    """Deterministic per-scenario load generator with routing awareness.

    Packets carry a globally increasing ``seq`` and round-robin over the
    populated flows.  Each delivery is recorded per flow, so the invariant
    checks know exactly which updates must survive.  The driver follows the
    scenario's "routing": traffic goes to the source until the move's state
    is installed (then, for reroute scenarios, to the destination after a
    convergence gap), pauses around instance deaths, and skips deliveries to
    dead instances entirely (those packets are blackholed by the network, not
    lost by the transfer — they are excluded from the sent journal).
    """

    def __init__(
        self,
        sim: Simulator,
        spec: ChaosSpec,
        mbs: Dict[str, ChaosMiddlebox],
        paths: Optional[Dict[str, "_DataPath"]] = None,
    ) -> None:
        self.sim = sim
        self.spec = spec
        self.mbs = mbs
        self.paths = paths
        self.target = SRC
        self.sent: Dict[FlowKey, List[int]] = {}
        self.delivered = 0
        self.blackholed = 0
        self._index = 0
        self._paused_until = 0.0
        self._dead: set = set()

    def start(self) -> None:
        """Schedule the first packet."""
        self.sim.schedule(self.spec.interval, self._tick)

    def pause(self, until: float) -> None:
        """Back off until *until* (routing reconvergence around a failure/flip)."""
        self._paused_until = max(self._paused_until, until)

    def mark_dead(self, name: str) -> None:
        """Stop delivering to a crashed instance."""
        self._dead.add(name)

    def switch_to(self, name: str) -> None:
        """Flip the traffic target (after the scenario's convergence gap)."""
        self.target = name
        self.pause(self.sim.now + self.spec.switch_gap)

    def _tick(self) -> None:
        if self._index >= self.spec.packets:
            return
        if self.sim.now < self._paused_until:
            self.sim.schedule_at(self._paused_until, self._tick)
            return
        index = self._index
        self._index += 1
        flow = index % self.spec.flows
        seq = index + 1
        source_mb = self.mbs[SRC]
        key = source_mb.flow_key_for(flow)
        target = self.target
        if target in self._dead:
            self.blackholed += 1
        else:
            packet = tcp_packet(key.nw_src, key.nw_dst, key.tp_src, key.tp_dst, b"c", seq=seq)
            canonical = key.bidirectional()
            self.sent.setdefault(canonical, []).append(seq)
            self.delivered += 1
            if self.paths is not None:
                # Through the real (faulted, protected) data path: delivery is
                # later and — with protection — guaranteed, so the seq still
                # belongs in the sent journal the invariants check against.
                self.paths[target].host.send(packet)
            else:
                self.mbs[target].receive(packet, 0)
        self.sim.schedule(self.spec.interval, self._tick)

    @property
    def finished(self) -> bool:
        """True once every packet was delivered (or blackholed)."""
        return self._index >= self.spec.packets


def run_chaos(spec: ChaosSpec, *, runtime=None) -> ChaosResult:
    """Run one chaos scenario to quiescence and evaluate the four invariants.

    Args:
        spec: the scenario.
        runtime: scheduler to run on — any :class:`~repro.runtime.Runtime`
            implementation.  ``None`` (the default) builds a fresh
            deterministic :class:`Simulator`, preserving the chaos matrix's
            bit-for-bit reproducibility.  Passing a
            :class:`~repro.runtime.RealtimeRuntime` runs the same scenario on
            the wall clock (the caller owns its lifecycle, i.e. ``close()``).
    """
    master = random.Random(spec.seed)
    sim = runtime if runtime is not None else Simulator()
    liveness = spec.kill is not None and spec.detect == "liveness"
    config = ControllerConfig(
        quiescence_timeout=spec.quiescence,
        num_shards=spec.shards,
        heartbeat_interval=1e-3 if liveness else None,
        liveness_timeout=4e-3,
    )
    controller = MBController(sim, config)
    northbound = NorthboundAPI(controller)
    profile = FAULT_PROFILES[spec.profile]
    mbs: Dict[str, ChaosMiddlebox] = {}
    channels: Dict[str, ControlChannel] = {}

    def add(name: str, flows: int = 0) -> ChaosMiddlebox:
        middlebox = ChaosMiddlebox(sim, name, flows=flows)
        channel = None
        if profile is not None:
            # Every channel gets its own fault stream, but all seeds derive
            # from the single master Random — the reproducibility contract.
            plan = FaultPlan.symmetric(master.randrange(2**31), **profile)
            channel = ControlChannel(sim, f"chan-{name}", faults=plan)
        # Keep our own reference: killed/unregistered instances disappear
        # from the controller, but their channels' fault counters must still
        # be part of the result's accounting.
        channels[name] = controller.register(middlebox, channel=channel)
        mbs[name] = middlebox
        return middlebox

    add(SRC, flows=spec.flows)
    add(DST)
    if spec.standby:
        add(STANDBY)

    data_paths = _build_data_paths(sim, spec, mbs, master)
    driver = _TrafficDriver(sim, spec, mbs, paths=data_paths)
    driver.start()

    result = ChaosResult(spec=spec)
    state: Dict[str, object] = {"handle": None, "killed": None}

    def on_introspection(event) -> None:
        if event.code == EventCode.INSTANCE_DOWN:
            driver.mark_dead(event.mb_name)
            driver.pause(sim.now + spec.switch_gap)

    northbound.subscribe_events(on_introspection)

    def start_move() -> None:
        handle = controller.move_internal(
            SRC,
            DST,
            FlowPattern.wildcard(),
            spec.transfer_spec(),
            standby=STANDBY if spec.standby else None,
        )
        state["handle"] = handle
        if spec.reroute_enabled:
            def on_installed(future) -> None:
                if future.exception is None and DST not in driver._dead:
                    driver.switch_to(DST)

            handle.state_installed.add_done_callback(on_installed)

    sim.schedule(spec.move_at, start_move)

    # -- scripted crash -----------------------------------------------------------
    kill_target = {"src": SRC, "dst": DST}.get(spec.kill or "", None)

    def do_kill() -> None:
        if state["killed"] is not None:
            return
        state["killed"] = kill_target
        driver.mark_dead(kill_target)
        driver.pause(sim.now + spec.switch_gap)
        controller.kill(kill_target, declare=not liveness)

    if kill_target is not None:
        if spec.kill_at_round is not None:
            def round_probe() -> None:
                handle = state["handle"]
                if state["killed"] is not None:
                    return
                if handle is not None and handle.completed.done:
                    return  # the move finished before the scripted round
                if handle is not None and len(handle.record.rounds) >= spec.kill_at_round:
                    do_kill()
                    return
                sim.schedule(2e-4, round_probe)

            sim.schedule(spec.move_at, round_probe)
        else:
            sim.schedule(spec.kill_time if spec.kill_time is not None else 2e-3, do_kill)

    # -- drive to quiescence --------------------------------------------------------
    def settled() -> bool:
        handle = state["handle"]
        return (
            handle is not None
            and handle.completed.done
            and handle.finalized.done
            and driver.finished
        )

    while sim.now < spec.limit and not settled() and (sim.pending_events or sim.now == 0.0):
        sim.run(until=min(spec.limit, sim.now + 0.01))
    # Let retransmission timers, releases, and late replays drain fully.
    sim.run(until=sim.now + 3 * spec.quiescence + 0.05)

    result.settled_at = sim.now
    result.executed_events = sim.executed_events
    result.delivered = driver.delivered
    _capture_final_state(result, mbs)
    handle = state["handle"]

    # -- invariant 1: termination ----------------------------------------------------
    if handle is None or not handle.completed.done:
        result.violations.append(
            InvariantViolation("termination", f"operation did not reach a terminal state by t={sim.now:.3f}")
        )
        return result
    if handle.completed.exception is None:
        result.outcome = "completed"
        result.move_duration = handle.record.duration
        result.freeze_window = handle.record.freeze_window
    else:
        result.outcome = "failed"
        result.error = str(handle.completed.exception)
    if not handle.finalized.done:
        result.violations.append(
            InvariantViolation("termination", "completed but never finalized (quiescence step stuck)")
        )
    retried = bool(getattr(handle, "retried", False))
    result.retried_on_standby = retried

    # -- channel accounting ----------------------------------------------------------
    for channel in channels.values():
        result.messages += channel.total_messages
        result.drops += channel.total_dropped
        result.retransmits += channel.total_retransmits
        result.dedup_discards += channel.to_mb.dedup_discards + channel.to_controller.dedup_discards
        result.duplicates += channel.to_mb.duplicated + channel.to_controller.duplicated
    if data_paths is not None:
        _account_data_paths(result, data_paths)

    # -- invariant 4a: no leaked holds / tags / tracking ------------------------------
    killed = state["killed"]
    tag_suspects = {name for name in (killed,) if name is not None}
    if result.outcome == "failed":
        tag_suspects.add(DST)
    _check_conservation(result, mbs, tag_suspects)

    # -- invariants 2 + 3: update fate ------------------------------------------------
    sent = driver.sent
    if result.outcome == "completed":
        owner_name = STANDBY if retried else DST
        _check_owner_state(result, spec, sent, mbs[owner_name].flow_seqs(), owner_name)
        if spec.guarantee in ("loss_free", "order_preserving") and handle.finalized.exception is None:
            # The move finalised: the source must have handed everything off.
            leftovers = sum(len(seqs) for seqs in mbs[SRC].flow_seqs().values())
            if leftovers:
                result.violations.append(
                    InvariantViolation("conservation", f"source retained {leftovers} seqs after finalize")
                )
    else:
        # A failed (crash-aborted) move must leave the source authoritative:
        # every update delivered to a then-alive source survives there.
        if killed != SRC:
            _check_source_retention(result, sent, mbs[SRC].flow_seqs())
    return result


def _account_data_paths(result: ChaosResult, paths: Dict[str, _DataPath]) -> None:
    """Fold the protected hops' wire/recovery counters into the result."""
    from ..net.protection import summarize

    for path in paths.values():
        summary = summarize(path.link)
        result.data_frames += summary.sent
        result.data_wire_losses += summary.lost_on_wire
        result.data_retransmits += summary.retransmits
        result.data_abandoned += summary.abandoned
        result.data_reordered += path.link.stats_a_to_b.reordered + path.link.stats_b_to_a.reordered


def _capture_final_state(result: ChaosResult, mbs: Dict[str, ChaosMiddlebox]) -> None:
    """Record every instance's seq journals (the equivalence-comparison material)."""
    result.final_state = {
        name: {str(key): list(seqs) for key, seqs in sorted(middlebox.flow_seqs().items(), key=lambda kv: str(kv[0]))}
        for name, middlebox in mbs.items()
    }


def _check_conservation(result: ChaosResult, mbs: Dict[str, ChaosMiddlebox], tag_suspects) -> None:
    """Invariant 4a: no instance leaks holds, queued packets, armed dirty
    tracking, or — for the instances in *tag_suspects* (killed/orphaned ones
    and a failed move's destination) — ``(op_id, round)`` install tags."""
    for name, middlebox in mbs.items():
        if middlebox._held_flows or middlebox._held_packets:
            result.violations.append(
                InvariantViolation(
                    "conservation",
                    f"{name} leaked packet holds: flows={len(middlebox._held_flows)} "
                    f"queued={sum(len(q) for q in middlebox._held_packets.values())}",
                )
            )
        for role, store in (("support", middlebox.support_store), ("report", middlebox.report_store)):
            if store.tracking_dirty:
                result.violations.append(
                    InvariantViolation("conservation", f"{name}.{role} store left with dirty tracking armed")
                )
        if name in tag_suspects:
            tags = middlebox.support_store.install_round_count + middlebox.report_store.install_round_count
            if tags:
                result.violations.append(
                    InvariantViolation("conservation", f"{name} holds {tags} orphaned (op_id, round) install tags")
                )


def run_federated_chaos(spec: ChaosSpec) -> ChaosResult:
    """Run the federated chaos scenario: domain death under a lossy WAN.

    Three controller domains gossip over inter-domain channels faulted with
    the spec's profile (the "lossy inter-domain channel" axis).  The standard
    move-under-load workload runs entirely inside ``chaos-dc0`` — so the four
    classic invariants apply to it unchanged — while ``chaos-dc2``'s
    controller is crashed mid-run.  The surviving domains must suspect the
    death, elect the unique rendezvous successor, and adopt the victim's
    orphan instance (:data:`FED_AUX`) via the crash-safe purge path, with its
    populated per-flow state intact, the ownership directory re-homed, and
    the survivors' gossip views converged.  All of it is seeded by the same
    single master ``random.Random`` discipline as :func:`run_chaos`.
    """
    master = random.Random(spec.seed)
    sim = Simulator()
    profile = FAULT_PROFILES[spec.profile]
    fed_config = FederationConfig(
        gossip=GossipConfig(fanout=2, interval=1e-3, ttl=0.25, seed=master.randrange(2**31)),
        # Above the worst single-retransmit stall of the reliable WAN channel
        # (a dropped digest head-of-line blocks in-order delivery for about a
        # retransmit timeout, ~15 ms at 2 ms base latency) so false suspicion
        # between survivors stays rare; the obituary-healing path in
        # FederatedDomain covers the residual double-drop cases.
        suspicion_timeout=2.5e-2,
    )
    federation = Federation(sim, fed_config)
    controller_config = ControllerConfig(quiescence_timeout=spec.quiescence, num_shards=spec.shards)
    for domain_name in FED_DOMAINS:
        federation.add_domain(domain_name, controller_config=controller_config)
    for i, a in enumerate(FED_DOMAINS):
        for b in FED_DOMAINS[i + 1 :]:
            plan = FaultPlan.symmetric(master.randrange(2**31), **profile) if profile else None
            federation.connect(a, b, latency=2e-3, bandwidth=12.5e6, faults=plan)
    workload, victim = federation.domains[FED_DOMAINS[0]], federation.domains[FED_DOMAINS[2]]

    mbs: Dict[str, ChaosMiddlebox] = {}
    channels: Dict[str, ControlChannel] = {}

    def add(domain, name: str, flows: int = 0, subnet: str = "10.7") -> ChaosMiddlebox:
        middlebox = ChaosMiddlebox(sim, name, flows=flows, subnet=subnet)
        channel = None
        if profile is not None:
            plan = FaultPlan.symmetric(master.randrange(2**31), **profile)
            channel = ControlChannel(sim, f"chan-{name}", faults=plan)
        channels[name] = domain.register(middlebox, channel=channel)
        mbs[name] = middlebox
        return middlebox

    source = add(workload, SRC, flows=spec.flows)
    add(workload, DST)
    aux = add(victim, FED_AUX, flows=spec.flows, subnet="10.9")
    workload.claim_flows([key.bidirectional() for key in (source.flow_key_for(i) for i in range(spec.flows))])
    victim.claim_flows([key.bidirectional() for key in (aux.flow_key_for(i) for i in range(spec.flows))])
    aux_expected = {key: dict(record) for key, record in aux.support_store.items()}

    driver = _TrafficDriver(sim, spec, mbs)
    driver.start()

    result = ChaosResult(spec=spec)
    state: Dict[str, object] = {"handle": None}

    def start_move() -> None:
        state["handle"] = workload.controller.move_internal(SRC, DST, FlowPattern.wildcard(), spec.transfer_spec())

    sim.schedule(spec.move_at, start_move)
    crash_at = spec.kill_time if spec.kill_time is not None else 4e-3
    sim.schedule(crash_at, lambda: federation.crash_domain(victim.name))

    def adopted() -> bool:
        return any(domain.takeovers for domain in federation.live_domains())

    def settled() -> bool:
        handle = state["handle"]
        return (
            handle is not None
            and handle.completed.done
            and handle.finalized.done
            and driver.finished
            and adopted()
            and federation.converged()
        )

    while sim.now < spec.limit and not settled() and (sim.pending_events or sim.now == 0.0):
        sim.run(until=min(spec.limit, sim.now + 0.01))
    sim.run(until=sim.now + 3 * spec.quiescence + 0.05)
    # A rare false suspicion between the survivors (a WAN retransmit stall)
    # may have churned the membership views during the drain; the healing
    # path always re-converges them, so wait for that before freezing the
    # federation — stop() at a diverged instant would fossilise the churn.
    while sim.now < spec.limit and not federation.converged() and sim.pending_events:
        sim.run(until=min(spec.limit, sim.now + 0.01))
    federation.stop()
    sim.run(until=sim.now + 0.05)

    result.settled_at = sim.now
    result.executed_events = sim.executed_events
    result.delivered = driver.delivered
    result.gossip_rounds = sum(domain.gossip_rounds for domain in federation.live_domains())
    _capture_final_state(result, mbs)
    handle = state["handle"]

    # -- invariant 1: termination (workload move + takeover + convergence) -----------
    if handle is None or not handle.completed.done:
        result.violations.append(
            InvariantViolation("termination", f"operation did not reach a terminal state by t={sim.now:.3f}")
        )
        return result
    if handle.completed.exception is None:
        result.outcome = "completed"
        result.move_duration = handle.record.duration
        result.freeze_window = handle.record.freeze_window
    else:
        result.outcome = "failed"
        result.error = str(handle.completed.exception)
    if not handle.finalized.done:
        result.violations.append(
            InvariantViolation("termination", "completed but never finalized (quiescence step stuck)")
        )

    # -- federated invariants: elected takeover, adoption, convergence ---------------
    adopters = sorted(domain.name for domain in federation.live_domains() if victim.name in domain.takeovers)
    if len(adopters) != 1:
        result.violations.append(
            InvariantViolation("takeover", f"expected exactly one elected adopter of {victim.name}, got {adopters}")
        )
    else:
        result.takeover_by = adopters[0]
        adopter = federation.domains[adopters[0]]
        if not adopter.controller.is_registered(FED_AUX):
            result.violations.append(
                InvariantViolation("takeover", f"{adopters[0]} elected but never re-homed {FED_AUX}")
            )
        orphan_tokens = adopter.directory.tokens_owned_by(victim.name)
        if orphan_tokens:
            result.violations.append(
                InvariantViolation(
                    "takeover", f"{len(orphan_tokens)} ownership entries still homed in dead {victim.name}"
                )
            )
    result.federation_converged = federation.converged()
    if not result.federation_converged:
        result.violations.append(
            InvariantViolation("takeover", "surviving domains' gossip views never converged")
        )
    observed_aux = {key: record for key, record in aux.support_store.items()}
    missing = [key for key in aux_expected if key not in observed_aux]
    if missing:
        result.violations.append(
            InvariantViolation("lost-updates", f"{FED_AUX} lost {len(missing)} per-flow entries in the takeover")
        )

    # -- channel accounting ----------------------------------------------------------
    for channel in channels.values():
        result.messages += channel.total_messages
        result.drops += channel.total_dropped
        result.retransmits += channel.total_retransmits
        result.dedup_discards += channel.to_mb.dedup_discards + channel.to_controller.dedup_discards
        result.duplicates += channel.to_mb.duplicated + channel.to_controller.duplicated

    # -- invariants 2-4 on the workload move -----------------------------------------
    tag_suspects = {DST} if result.outcome == "failed" else set()
    _check_conservation(result, mbs, tag_suspects)
    if result.outcome == "completed":
        _check_owner_state(result, spec, driver.sent, mbs[DST].flow_seqs(), DST)
        if spec.guarantee in ("loss_free", "order_preserving") and handle.finalized.exception is None:
            leftovers = sum(len(seqs) for seqs in mbs[SRC].flow_seqs().values())
            if leftovers:
                result.violations.append(
                    InvariantViolation("conservation", f"source retained {leftovers} seqs after finalize")
                )
    else:
        _check_source_retention(result, driver.sent, mbs[SRC].flow_seqs())
    return result


def _check_owner_state(
    result: ChaosResult,
    spec: ChaosSpec,
    sent: Dict[FlowKey, List[int]],
    observed: Dict[FlowKey, List[int]],
    owner_name: str,
) -> None:
    """Compare the surviving owner's seq journals against what was delivered."""
    lost_total = 0
    for key, expected in sorted(sent.items()):
        seqs = observed.get(key, [])
        unique = set(seqs)
        if len(unique) != len(seqs):
            doubled = sorted({seq for seq in seqs if seqs.count(seq) > 1})
            result.violations.append(
                InvariantViolation("lost-updates", f"{owner_name} double-applied seqs {doubled} for {key}")
            )
        fabricated = unique - set(expected)
        if fabricated:
            result.violations.append(
                InvariantViolation("conservation", f"{owner_name} fabricated seqs {sorted(fabricated)} for {key}")
            )
        missing = set(expected) - unique
        lost_total += len(missing)
        if missing and spec.guarantee in ("loss_free", "order_preserving"):
            result.violations.append(
                InvariantViolation(
                    "lost-updates",
                    f"{owner_name} lost {len(missing)} update(s) for {key}: {sorted(missing)[:6]}",
                )
            )
        if spec.guarantee == "order_preserving":
            if any(later <= earlier for earlier, later in zip(seqs, seqs[1:])):
                result.violations.append(
                    InvariantViolation("reordering", f"{owner_name} applied {key} out of order: {seqs}")
                )
    result.lost_updates = lost_total


def _check_source_retention(
    result: ChaosResult, sent: Dict[FlowKey, List[int]], observed: Dict[FlowKey, List[int]]
) -> None:
    """After a crash-aborted move the (alive) source must retain every update."""
    for key, expected in sorted(sent.items()):
        seqs = observed.get(key, [])
        missing = set(expected) - set(seqs)
        if missing:
            result.violations.append(
                InvariantViolation(
                    "conservation",
                    f"aborted move lost {len(missing)} update(s) at the source for {key}",
                )
            )
        result.lost_updates += len(missing)
