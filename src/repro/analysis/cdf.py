"""CDF construction helpers for the evaluation figures."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass
class CDF:
    """An empirical cumulative distribution function."""

    values: np.ndarray
    probabilities: np.ndarray

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "CDF":
        ordered = np.sort(np.asarray(list(samples), dtype=float))
        if ordered.size == 0:
            return cls(values=np.array([]), probabilities=np.array([]))
        probabilities = np.arange(1, ordered.size + 1) / ordered.size
        return cls(values=ordered, probabilities=probabilities)

    def at(self, value: float) -> float:
        """P(X <= value)."""
        if self.values.size == 0:
            return 0.0
        return float(np.searchsorted(self.values, value, side="right") / self.values.size)

    def quantile(self, q: float) -> float:
        """The value below which a fraction *q* of samples fall."""
        if self.values.size == 0:
            return 0.0
        return float(np.quantile(self.values, q))

    def exceeding(self, value: float) -> float:
        """P(X > value)."""
        return 1.0 - self.at(value)

    def series(self, points: int = 50) -> List[Tuple[float, float]]:
        """Evenly spaced (value, probability) pairs suitable for printing a figure series."""
        if self.values.size == 0:
            return []
        indexes = np.linspace(0, self.values.size - 1, num=min(points, self.values.size)).astype(int)
        return [(float(self.values[i]), float(self.probabilities[i])) for i in indexes]
