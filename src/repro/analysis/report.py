"""Plain-text table and series renderers used by the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures; these helpers
print the rows/series in a uniform format so ``bench_output.txt`` reads as a
set of labelled reproductions.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple


def format_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width text table."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    headers = [str(header) for header in headers]
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [f"== {title} =="]
    lines.append("  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[index] for index in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(title: str, points: Iterable[Tuple[object, object]], *, x_label: str = "x", y_label: str = "y") -> str:
    """Render a figure series as two columns."""
    return format_table(title, [x_label, y_label], [(x, y) for x, y in points])


def format_mapping(title: str, mapping: Dict[str, object]) -> str:
    """Render a flat mapping as a two-column table."""
    return format_table(title, ["metric", "value"], sorted(mapping.items()))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def print_block(text: str) -> None:
    """Print a report block surrounded by blank lines (keeps bench output readable)."""
    print()
    print(text)
    print()
