"""Output comparison for the correctness experiments (paper section 8.2).

The paper verifies correctness by comparing the *output* of an unmodified
middlebox that processed a whole trace against the combined output of the
OpenMB-enabled middleboxes that processed the same trace while a control
application migrated or re-balanced flows: conn.log and http.log for the IDS,
aggregate statistics for the monitor, and decodability of every packet for RE.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from ..middleboxes.ids import IDS, ConnLogEntry, HttpLogEntry
from ..middleboxes.monitor import PassiveMonitor, combined_statistics


@dataclass
class LogComparison:
    """Result of comparing two multisets of log entries."""

    matching: int
    only_in_reference: List[object] = field(default_factory=list)
    only_in_candidate: List[object] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return not self.only_in_reference and not self.only_in_candidate

    @property
    def differences(self) -> int:
        return len(self.only_in_reference) + len(self.only_in_candidate)


def compare_log_entries(reference: Iterable[object], candidate: Iterable[object]) -> LogComparison:
    """Compare two collections of hashable log entries as multisets (order-insensitive)."""
    ref_counter = Counter(reference)
    cand_counter = Counter(candidate)
    matching = sum((ref_counter & cand_counter).values())
    only_ref = list((ref_counter - cand_counter).elements())
    only_cand = list((cand_counter - ref_counter).elements())
    return LogComparison(matching=matching, only_in_reference=only_ref, only_in_candidate=only_cand)


def combined_conn_log(instances: Sequence[IDS]) -> List[ConnLogEntry]:
    """The union (concatenation) of conn.log entries across IDS instances."""
    entries: List[ConnLogEntry] = []
    for instance in instances:
        entries.extend(instance.conn_log)
    return entries


def combined_http_log(instances: Sequence[IDS]) -> List[HttpLogEntry]:
    """The union (concatenation) of http.log entries across IDS instances."""
    entries: List[HttpLogEntry] = []
    for instance in instances:
        entries.extend(instance.http_log)
    return entries


def compare_ids_outputs(reference: IDS, candidates: Sequence[IDS]) -> Dict[str, LogComparison]:
    """Compare an unmodified IDS's logs against the combined logs of OpenMB-enabled instances."""
    return {
        "conn_log": compare_log_entries(reference.conn_log, combined_conn_log(candidates)),
        "http_log": compare_log_entries(reference.http_log, combined_http_log(candidates)),
    }


def compare_monitor_statistics(reference: PassiveMonitor, candidates: Sequence[PassiveMonitor]) -> Dict[str, Tuple]:
    """Compare aggregate monitor statistics; returns {field: (reference, combined)} for mismatches."""
    ref_stats = reference.statistics()
    combined = combined_statistics(candidates)
    mismatches: Dict[str, Tuple] = {}
    for field_name in ("total_packets", "total_bytes", "tcp_packets", "udp_packets", "icmp_packets", "flows_seen"):
        if ref_stats[field_name] != combined[field_name]:
            mismatches[field_name] = (ref_stats[field_name], combined[field_name])
    if ref_stats["assets"] != combined["assets"]:
        mismatches["assets"] = (ref_stats["assets"], combined["assets"])
    return mismatches
