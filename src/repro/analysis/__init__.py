"""Measurement, comparison, and reporting helpers for the evaluation."""

from .cdf import CDF
from .compare import (
    LogComparison,
    combined_conn_log,
    combined_http_log,
    compare_ids_outputs,
    compare_log_entries,
    compare_monitor_statistics,
)
from .report import format_mapping, format_series, format_table, print_block
from .timeline import ActivitySampler, ActivitySeries, OperationWindow, operation_windows

__all__ = [
    "CDF",
    "LogComparison",
    "combined_conn_log",
    "combined_http_log",
    "compare_ids_outputs",
    "compare_log_entries",
    "compare_monitor_statistics",
    "format_mapping",
    "format_series",
    "format_table",
    "print_block",
    "ActivitySampler",
    "ActivitySeries",
    "OperationWindow",
    "operation_windows",
]
