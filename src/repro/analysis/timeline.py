"""Timelines of middlebox activity (Figure 7).

Figure 7 in the paper shows, for the scale-up scenario, when each middlebox
processed packets, when it raised or consumed re-process events, and when the
get/put operations started and finished.  :class:`ActivitySampler` samples the
relevant counters of a set of middleboxes at a fixed interval on the simulated
clock, and :func:`operation_windows` extracts the get/put windows from the
controller's operation records, which together reconstruct the figure's
series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.operations import OperationRecord
from ..middleboxes.base import Middlebox
from ..net.simulator import Simulator


@dataclass
class ActivitySample:
    """One sample of a middlebox's cumulative counters."""

    time: float
    packets_received: int
    reprocess_events_raised: int
    reprocessed_packets: int


@dataclass
class ActivitySeries:
    """Samples for one middlebox, with helpers to derive per-interval rates."""

    mb_name: str
    samples: List[ActivitySample] = field(default_factory=list)

    def rates(self) -> List[Tuple[float, float, float, float]]:
        """(time, packet rate, event-raise rate, event-consume rate) per interval."""
        rows = []
        for previous, current in zip(self.samples, self.samples[1:]):
            dt = current.time - previous.time
            if dt <= 0:
                continue
            rows.append(
                (
                    current.time,
                    (current.packets_received - previous.packets_received) / dt,
                    (current.reprocess_events_raised - previous.reprocess_events_raised) / dt,
                    (current.reprocessed_packets - previous.reprocessed_packets) / dt,
                )
            )
        return rows

    def total_packets(self) -> int:
        return self.samples[-1].packets_received if self.samples else 0


class ActivitySampler:
    """Periodically samples middlebox counters on the simulated clock."""

    def __init__(self, sim: Simulator, middleboxes: Sequence[Middlebox], *, interval: float = 0.05) -> None:
        self.sim = sim
        self.middleboxes = list(middleboxes)
        self.interval = interval
        self.series: Dict[str, ActivitySeries] = {mb.name: ActivitySeries(mb.name) for mb in middleboxes}
        self._stopped = False

    def start(self, duration: float) -> None:
        """Schedule samples covering the next *duration* seconds."""
        steps = int(duration / self.interval) + 1
        for index in range(steps):
            self.sim.schedule(index * self.interval, self._sample)

    def _sample(self) -> None:
        if self._stopped:
            return
        now = self.sim.now
        for middlebox in self.middleboxes:
            self.series[middlebox.name].samples.append(
                ActivitySample(
                    time=now,
                    packets_received=middlebox.counters.packets_received,
                    reprocess_events_raised=middlebox.counters.reprocess_events_raised,
                    reprocessed_packets=middlebox.counters.reprocessed_packets,
                )
            )

    def stop(self) -> None:
        self._stopped = True


@dataclass
class OperationWindow:
    """The time window of one state operation, as drawn in Figure 7."""

    op_type: str
    src: str
    dst: str
    started_at: float
    completed_at: Optional[float]
    finalized_at: Optional[float]
    chunks: int
    events_forwarded: int


def operation_windows(records: Sequence[OperationRecord]) -> List[OperationWindow]:
    """Extract operation windows from controller operation records."""
    return [
        OperationWindow(
            op_type=record.type.value,
            src=record.src,
            dst=record.dst,
            started_at=record.started_at,
            completed_at=record.completed_at,
            finalized_at=record.finalized_at,
            chunks=record.chunks_transferred,
            events_forwarded=record.events_forwarded,
        )
        for record in records
    ]
