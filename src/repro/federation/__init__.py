"""Multi-controller federation: gossip dissemination, takeover, WAN moves.

See :mod:`repro.federation.domain` for the architecture overview and
``docs/federation.md`` for the operator-facing guide.
"""

from .directory import OwnershipDirectory
from .domain import FederatedDomain, Federation, FederationConfig, PeerLink
from .election import elect_successor, ranked_successors, takeover_score
from .gossip import GossipConfig, GossipState, VersionedEntry, VersionedMap, choose_peers

__all__ = [
    "FederatedDomain",
    "Federation",
    "FederationConfig",
    "GossipConfig",
    "GossipState",
    "OwnershipDirectory",
    "PeerLink",
    "VersionedEntry",
    "VersionedMap",
    "choose_peers",
    "elect_successor",
    "ranked_successors",
    "takeover_score",
]
