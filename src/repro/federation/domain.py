"""Federated controller domains: gossiping peers, takeover, cross-domain moves.

A :class:`FederatedDomain` wraps one :class:`~repro.core.controller.MBController`
(one rack / one datacenter) and peers with other domains over ordinary
:class:`~repro.core.channel.ControlChannel` objects — the same latency /
bandwidth / FaultPlan model the southbound uses, so the inter-domain WAN can
be made slow, jittery, and lossy with the existing machinery.  On top of the
gossip layer (:mod:`repro.federation.gossip`) the domain implements:

* **liveness dissemination** — every domain authors versioned liveness facts
  for its own instances (built from the controller's PR 5 heartbeat state via
  the ``INSTANCE_DOWN`` introspection event) and a membership fact for
  itself; gossip spreads both federation-wide;
* **gossip-elected takeover** — a domain silent for longer than the suspicion
  timeout is declared dead; every survivor runs the deterministic rendezvous
  election (:mod:`repro.federation.election`) over its converged membership
  view, and the unique winner adopts the orphans: each instance is purged of
  in-flight transfer involvement (the PR 5 crash-safe purge path) and
  re-registered with the winner's controller, and the ownership directory is
  re-homed;
* **WAN-aware cross-domain moves** — ``move_to`` borrows the destination
  instance from its home domain (FED_MOVE_REQUEST/GRANT), registers it over a
  dedicated WAN channel carrying the caller's (possibly asymmetric)
  FaultPlan, and runs an iterative precopy whose inter-round pacing gain is
  derived from the gossip layer's smoothed one-way delay and jitter estimate
  of the peer link (the ``wan_pacing`` :class:`~repro.core.transfer.TransferSpec`
  knob).  On completion the moved flows are claimed for the destination
  domain in the directory and the instance returns home (FED_MOVE_DONE).

A federation of **one** domain arms no timers and sends no messages: every
federation code path is gated on having peers, so ``num_domains=1`` is
bit-for-bit identical to driving the wrapped controller directly (the golden
equivalence test mirrors ``tests/test_sharding.py``'s N=1 pattern).
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field as dataclass_field
from typing import Any, Dict, List, Optional, Tuple

from ..core import messages
from ..core.channel import ControlChannel, FaultPlan
from ..core.controller import ControllerConfig, MBController
from ..core.events import EventCode
from ..core.messages import Message, MessageType
from ..core.stats import ControllerStats
from ..core.transfer import TransferMode, TransferSpec
from ..net.simulator import Future, Simulator
from .directory import OwnershipDirectory
from .election import elect_successor
from .gossip import GossipConfig, GossipState, choose_peers


@dataclass(frozen=True)
class FederationConfig:
    """Federation-level tunables layered on top of :class:`GossipConfig`."""

    gossip: GossipConfig = dataclass_field(default_factory=GossipConfig)
    #: A direct peer silent for longer than this is declared dead (and the
    #: takeover election runs).  Should cover several gossip intervals so a
    #: lossy channel's drops do not look like a death.
    suspicion_timeout: float = 2e-2
    #: Whether the elected survivor actually adopts a dead domain's orphans.
    takeover: bool = True
    #: WAN pacing: one-way delays at or below this look like a LAN and get no
    #: pacing; the pacing gain grows with the measured excess over it.
    lan_delay_reference: float = 1e-3
    #: Upper bound on the adaptive ``wan_pacing`` gain.
    max_pacing_gain: float = 4.0


class PeerLink:
    """One inter-domain channel endpoint plus its WAN quality estimate.

    The two ends of a :class:`ControlChannel` are asymmetric (a "controller"
    side and a "middlebox" side); ``side`` records which half this domain
    bound so :meth:`send` picks the right direction.  Every received gossip
    digest carries the sender's simulated send time, and :meth:`observe`
    folds the resulting one-way delay sample into RFC 6298-style smoothed
    delay (``srtt``) and jitter estimates — the measurement the cross-domain
    precopy pacing adapts to.
    """

    def __init__(self, peer: str, channel: ControlChannel, side: str, *, latency: float, bandwidth: float) -> None:
        self.peer = peer
        self.channel = channel
        self.side = side
        #: Configured base characteristics, reused for dedicated move channels.
        self.latency = latency
        self.bandwidth = bandwidth
        #: Measured one-way delay estimate (None until the first sample).
        self.srtt: Optional[float] = None
        self.jitter: float = 0.0
        self.samples = 0

    def send(self, message: Message) -> None:
        """Transmit *message* towards the peer over this link's direction."""
        if self.side == "a":
            self.channel.send_to_middlebox(message)
        else:
            self.channel.send_to_controller(message)

    def observe(self, sample: float) -> None:
        """Fold one one-way delay sample into the smoothed delay/jitter."""
        if sample < 0:
            return
        self.samples += 1
        if self.srtt is None:
            self.srtt = sample
            self.jitter = sample / 2.0
        else:
            self.jitter = 0.75 * self.jitter + 0.25 * abs(sample - self.srtt)
            self.srtt = 0.875 * self.srtt + 0.125 * sample

    def close(self) -> None:
        """Tear down this domain's half of the link (crash/shutdown path)."""
        if self.side == "a":
            self.channel.unbind_controller()
        else:
            self.channel.set_middlebox_down()


class FederatedDomain:
    """One controller domain participating in the gossip federation."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        controller: Optional[MBController] = None,
        controller_config: Optional[ControllerConfig] = None,
        config: Optional[FederationConfig] = None,
        federation: Optional["Federation"] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.config = config or FederationConfig()
        self.controller = controller or MBController(sim, controller_config)
        self.federation = federation
        #: Injected RNG (determinism policy): seeded from the gossip seed and
        #: the domain name, so every domain draws an independent stream.
        self.rng = random.Random(f"{self.config.gossip.seed}|{name}")
        self.gossip = GossipState()
        self.directory = OwnershipDirectory()
        self._peers: Dict[str, PeerLink] = {}
        self._last_heard: Dict[str, float] = {}
        #: Middlebox objects ever registered here (incl. currently-lent ones);
        #: the takeover path resolves orphans through the federation registry.
        self._instances: Dict[str, Any] = {}
        #: Instances lent out as cross-domain move destinations: name -> borrower.
        self._lent: Dict[str, str] = {}
        #: Outbound cross-domain moves keyed by FED_MOVE_REQUEST xid.
        self._outbound: Dict[int, Dict[str, Any]] = {}
        self._running = True
        self._crashed = False
        self._gossip_armed = False
        self.gossip_rounds = 0
        self.digests_received = 0
        #: Dead domains this domain adopted (takeover audit trail).
        self.takeovers: List[str] = []
        #: Undo log per takeover: dead domain -> (instances adopted here,
        #: ownership tokens re-homed).  Consumed by :meth:`_revert_takeover`
        #: when an obituary turns out to have been a false suspicion.
        self._takeover_log: Dict[str, Tuple[List[str], List[str]]] = {}
        self.gossip.membership.put(name, name, {"alive": True}, sim.now)
        self.controller.subscribe_events(self._on_introspection)

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def alive(self) -> bool:
        """False once :meth:`crash` ran (the controller process is gone).

        A :meth:`stop`-ped domain is still alive — it merely quit gossiping
        (clean test teardown), which is a different thing from dying.
        """
        return not self._crashed

    def crash(self) -> None:
        """Kill this domain's controller process (the chaos domain-death).

        No cleanup messages are sent — that is the point.  Instance agents
        stop beaconing into the void and every channel's controller half is
        detached, exactly as if the process died; recovery is entirely the
        peers' job (suspicion, election, adoption with the PR 5 purge path).
        """
        if self._crashed:
            return
        self._crashed = True
        self._running = False
        for name in list(self.controller.middlebox_names()):
            registration = self.controller._registrations[name]
            registration.agent.stop_heartbeats()
            registration.channel.unbind_controller()
        for link in self._peers.values():
            link.close()
        self.gossip.membership.put(self.name, self.name, {"alive": False}, self.sim.now)

    def stop(self) -> None:
        """Stop gossiping (clean shutdown for tests; channels stay up)."""
        self._running = False

    # -- registration ------------------------------------------------------------------

    def register(self, middlebox: Any, *, channel: Optional[ControlChannel] = None) -> ControlChannel:
        """Register *middlebox* with this domain's controller and author its
        liveness fact (gossip spreads it to the other domains)."""
        bound = self.controller.register(middlebox, channel=channel)
        self._instances[middlebox.name] = middlebox
        self.gossip.liveness.put(middlebox.name, self.name, {"domain": self.name, "alive": True}, self.sim.now)
        return bound

    def unregister(self, name: str, *, dead: bool = False) -> None:
        """Unregister an instance and author its tombstone liveness fact."""
        self.controller.unregister(name, dead=dead)
        self.gossip.liveness.put(name, self.name, {"domain": self.name, "alive": False}, self.sim.now)

    def claim_flows(self, keys, *, domain: Optional[str] = None) -> List[str]:
        """Claim ownership of *keys* for *domain* (default: this domain)."""
        return self.directory.claim_flows(keys, domain or self.name, self.sim.now)

    def _on_introspection(self, event) -> None:
        """PR 5 liveness feed: declared-dead instances become tombstones."""
        if event.code == EventCode.INSTANCE_DOWN and event.mb_name in self._instances:
            self.gossip.liveness.put(
                event.mb_name, self.name, {"domain": self.name, "alive": False}, self.sim.now
            )

    # -- peering + gossip --------------------------------------------------------------

    def add_peer(self, link: PeerLink) -> None:
        """Attach an inter-domain link (built by :meth:`Federation.connect`)."""
        self._peers[link.peer] = link
        self._last_heard[link.peer] = self.sim.now
        self.gossip.membership.put(link.peer, self.name, {"alive": True}, self.sim.now)
        self._arm_gossip()

    def peer_link(self, peer: str) -> PeerLink:
        """The link object for *peer* (KeyError when not connected)."""
        return self._peers[peer]

    def _live_peers(self) -> List[str]:
        """Directly-connected peers the membership view believes alive."""
        return [
            peer
            for peer in sorted(self._peers)
            if (self.gossip.membership.value_of(peer) or {}).get("alive", True)
        ]

    def _arm_gossip(self) -> None:
        """Schedule the next gossip round (only while peers exist — a lone
        domain must add zero simulator events)."""
        if self._gossip_armed or not self._running or not self._peers:
            return
        self._gossip_armed = True
        self.sim.schedule(self.config.gossip.interval, self._gossip_tick)

    def _gossip_tick(self) -> None:
        """One gossip round: expire, suspect, elect, push digests, re-arm."""
        self._gossip_armed = False
        if not self._running:
            return
        now = self.sim.now
        ttl = self.config.gossip.ttl
        self.gossip.liveness.expire(now, ttl)
        self._check_suspicions(now)
        # Target selection deliberately ignores the membership view for
        # directly-connected peers: a digest to a truly crashed peer is
        # dropped at its closed channel half, while one to a falsely-suspected
        # peer reaches it and triggers the obituary-healing path.  Gating on
        # liveness here deadlocks when two survivors suspect each other in the
        # same window (neither sends, so neither can ever heal).
        targets = choose_peers(self.rng, sorted(self._peers), self.config.gossip.fanout)
        for peer in targets:
            self._send_digest(peer)
        self.gossip_rounds += 1
        # The round timer stays armed while any peer link exists; stop() (or
        # crash()) disarms it, so a quiesced federation drains the queue.
        if self._peers:
            self._arm_gossip()

    def _send_digest(self, peer: str) -> None:
        self._peers[peer].send(
            messages.fed_gossip(
                peer,
                self.name,
                self.sim.now,
                membership=self.gossip.membership.digest(),
                liveness=self.gossip.liveness.digest(),
                ownership=self.directory.digest(),
            )
        )

    def _check_suspicions(self, now: float) -> None:
        """Declare silent direct peers dead and run the takeover election."""
        for peer in sorted(self._peers):
            entry = self.gossip.membership.value_of(peer)
            if entry is not None and not entry.get("alive"):
                continue
            if now - self._last_heard.get(peer, now) <= self.config.suspicion_timeout:
                continue
            self.gossip.membership.put(peer, self.name, {"alive": False}, now)
            self._run_election(peer)

    def _run_election(self, dead_domain: str) -> None:
        """Deterministic rendezvous election; the winner adopts the orphans.

        Runs both when this domain locally suspects the death and when the
        obituary arrives by gossip — whichever happens first — so the winner
        acts no matter who detected the silence.  Adoption is idempotent
        (``_take_over`` skips domains already adopted).
        """
        if dead_domain in self.takeovers:
            return
        winner = elect_successor(dead_domain, self.gossip.live_domains())
        if winner == self.name and self.config.takeover:
            self._take_over(dead_domain)

    def _take_over(self, dead_domain: str) -> None:
        """Adopt a dead domain: purge + re-register its instances, re-home its
        flow ownership, and push the news to every live peer immediately."""
        self.takeovers.append(dead_domain)
        now = self.sim.now
        adopted: List[str] = []
        for instance in self.gossip.instances_of(dead_domain):
            obj = self._resolve_instance(instance)
            if obj is None or self.controller.is_registered(instance):
                continue
            # PR 5 crash-safe purge path: the dead controller's in-flight
            # operations can never deliver the releases/TRANSFER_ENDs they owe
            # this instance, so the orphan drops every trace of transfer
            # involvement locally before joining the new controller.
            obj.purge_transfer_state()
            self.register(obj)
            adopted.append(instance)
        tokens = self.directory.reassign(dead_domain, self.name, now)
        self._takeover_log[dead_domain] = (adopted, tokens)
        for peer in self._live_peers():
            self._send_digest(peer)

    def _revert_takeover(self, peer: str) -> None:
        """Undo the takeover of a falsely-suspected (actually alive) domain.

        Hearing from *peer* proves the obituary wrong — a genuinely crashed
        domain's channel halves are closed, so nothing it "sends" can arrive.
        Every effect of the adoption is handed back: the instances we
        registered are unregistered here (their home registrations were never
        dropped — the domain was alive the whole time), their event feeds are
        re-pointed at the home agents (registration is what re-aimed the
        singleton sink at us), the re-homed ownership tokens are re-authored
        for *peer*, and the corrected facts are pushed immediately so the
        split heals in one digest exchange instead of a full anti-entropy
        cycle.
        """
        self.takeovers.remove(peer)
        adopted, tokens = self._takeover_log.pop(peer, ([], []))
        now = self.sim.now
        home = self.federation.domains.get(peer) if self.federation is not None else None
        for name in adopted:
            obj = self._resolve_instance(name)
            if self.controller.is_registered(name):
                self.controller.unregister(name)
            self._instances.pop(name, None)
            if obj is not None and home is not None:
                registration = home.controller._registrations.get(name)
                if registration is not None:
                    obj.set_event_sink(registration.agent.send_event)
            self.gossip.liveness.put(name, self.name, {"domain": peer, "alive": True}, now)
        for token in tokens:
            self.directory.assign_token(token, peer, now)
        for other in self._live_peers():
            self._send_digest(other)

    def _resolve_instance(self, name: str) -> Optional[Any]:
        if name in self._instances:
            return self._instances[name]
        if self.federation is not None:
            return self.federation.middlebox_object(name)
        return None

    # -- inbound federation messages ---------------------------------------------------

    def _on_peer_message(self, peer: str, message: Message) -> None:
        """Dispatch one message arriving on an inter-domain channel."""
        if self._crashed:
            return
        self._last_heard[peer] = self.sim.now
        entry = self.gossip.membership.value_of(peer)
        if entry is not None and not entry.get("alive"):
            # Hearing from a peer we had declared dead disproves the obituary
            # (a crashed domain's link halves are closed, so only jitter or a
            # false suspicion can produce this).  Re-author the entry and
            # revive the gossip timer, which stops when no live peer remains.
            self.gossip.membership.put(peer, self.name, {"alive": True}, self.sim.now)
            if peer in self.takeovers:
                self._revert_takeover(peer)
            self._arm_gossip()
        if message.type == MessageType.FED_GOSSIP:
            self._absorb_digest(message)
        elif message.type == MessageType.FED_MOVE_REQUEST:
            self._on_move_request(peer, message)
        elif message.type == MessageType.FED_MOVE_GRANT:
            self._on_move_grant(peer, message)
        elif message.type == MessageType.FED_MOVE_DONE:
            self._on_move_done(message)

    def _absorb_digest(self, message: Message) -> None:
        body = message.body
        now = self.sim.now
        self.digests_received += 1
        sender = str(body.get("domain", ""))
        link = self._peers.get(sender)
        if link is not None:
            link.observe(now - float(body.get("sent_at", now)))
        membership_changes = self.gossip.membership.merge(body.get("membership", []), now)
        self.gossip.liveness.merge(body.get("liveness", []), now)
        self.directory.merge(body.get("ownership", []), now)
        for changed in membership_changes:
            value = self.gossip.membership.value_of(changed) or {}
            if changed != self.name and not value.get("alive"):
                # An obituary arrived by gossip before our own suspicion
                # fired: run the election now (the winner may be us).
                self._run_election(changed)
        own = self.gossip.membership.value_of(self.name)
        if own is not None and not own.get("alive"):
            # A peer suspected us while we were merely slow; re-assert life
            # with a higher version so the false obituary cannot win.
            self.gossip.membership.put(self.name, self.name, {"alive": True}, now)

    # -- cross-domain moves ------------------------------------------------------------

    def wan_pacing_for(self, peer: str) -> float:
        """The adaptive precopy pacing gain for moves towards *peer*.

        Derived from the gossip layer's measured one-way delay and jitter:
        ``(srtt + 4*jitter)`` at or below the LAN reference yields 0 (no
        pacing, LAN behaviour preserved); beyond it the gain grows with the
        measured excess, capped at ``max_pacing_gain``.
        """
        link = self._peers.get(peer)
        if link is None or link.srtt is None:
            return 0.0
        effective = link.srtt + 4.0 * link.jitter
        gain = effective / self.config.lan_delay_reference - 1.0
        return max(0.0, min(self.config.max_pacing_gain, gain))

    def move_to(
        self,
        peer: str,
        src: str,
        dst_instance: str,
        pattern,
        spec: Optional[TransferSpec] = None,
        *,
        faults: Optional[FaultPlan] = None,
    ) -> Future:
        """Move state from local *src* to *dst_instance* homed in *peer*.

        The peer lends the destination instance (FED_MOVE_REQUEST/GRANT);
        this domain registers it over a dedicated WAN channel inheriting the
        peer link's latency/bandwidth plus the caller's *faults* plan, runs
        the precopy with the adaptive ``wan_pacing`` gain, claims the moved
        flows for *peer* in the ownership directory, and returns the instance
        (FED_MOVE_DONE).  The returned future yields the OperationHandle's
        record on success.
        """
        future = self.sim.event(name=f"fed-move-{src}->{peer}/{dst_instance}")
        link = self._peers.get(peer)
        if link is None:
            future.fail(ValueError(f"domain {self.name!r} has no peer {peer!r}"))
            return future
        request = messages.fed_move_request(peer, self.name, dst_instance)
        self._outbound[request.xid] = {
            "future": future,
            "peer": peer,
            "src": src,
            "dst": dst_instance,
            "pattern": pattern,
            "spec": spec,
            "faults": faults,
        }
        link.send(request)
        return future

    def _on_move_request(self, peer: str, message: Message) -> None:
        """Home-domain side: lend the requested instance (or refuse)."""
        instance = str(message.body.get("instance", ""))
        link = self._peers[peer]
        if not self.controller.is_registered(instance) or instance in self._lent:
            link.send(
                messages.fed_move_grant(
                    message, peer, self.name, granted=False, reason=f"{instance!r} unavailable"
                )
            )
            return
        # Clean unregister: the instance leaves this controller for the
        # duration of the move (its object stays in ``_instances`` so it can
        # come home on FED_MOVE_DONE).
        self.controller.unregister(instance)
        self._lent[instance] = str(message.body.get("domain", peer))
        link.send(messages.fed_move_grant(message, peer, self.name, granted=True))

    def _on_move_grant(self, peer: str, message: Message) -> None:
        """Borrowing side: run the WAN move once the lend is granted."""
        pending = self._outbound.pop(message.reply_to or -1, None)
        if pending is None:
            return
        future: Future = pending["future"]
        if not message.body.get("granted"):
            future.fail(RuntimeError(f"cross-domain move refused: {message.body.get('reason', 'denied')}"))
            return
        dst = pending["dst"]
        obj = self._resolve_instance(dst)
        if obj is None:
            future.fail(RuntimeError(f"no object for lent instance {dst!r}"))
            return
        link = self._peers[peer]
        wan_channel = ControlChannel(
            self.sim,
            name=f"wan-{self.name}-{dst}",
            latency=link.latency,
            bandwidth=link.bandwidth,
            faults=pending["faults"],
        )
        self.controller.register(obj, channel=wan_channel)
        spec = self._wan_spec(pending["spec"], peer)
        handle = self.controller.move_internal(pending["src"], dst, pending["pattern"], spec)
        handle.finalized.add_done_callback(
            lambda done: self._finish_cross_move(peer, dst, handle, future, done)
        )

    def _wan_spec(self, spec: Optional[TransferSpec], peer: str) -> TransferSpec:
        """Resolve the caller's spec and inject the measured pacing gain."""
        base = TransferSpec.parse(spec) if spec is not None else TransferSpec.precopy()
        if base.mode is TransferMode.PRECOPY and base.wan_pacing == 0.0:
            gain = self.wan_pacing_for(peer)
            if gain > 0.0:
                base = dataclasses.replace(base, wan_pacing=gain)
        return base

    def _finish_cross_move(self, peer: str, dst: str, handle, future: Future, done: Future) -> None:
        """Borrowing side epilogue: claim ownership, return the instance."""
        ok = done.exception is None
        if ok:
            moved = sorted(handle._operation.pipeline._all_flows)
            self.directory.claim_flows(moved, peer, self.sim.now)
        if self.controller.is_registered(dst):
            self.controller.unregister(dst)
        link = self._peers.get(peer)
        if link is not None:
            link.send(messages.fed_move_done(peer, self.name, dst, ok=ok))
        if ok:
            future.succeed(handle.record)
        else:
            future.fail(done.exception)

    def _on_move_done(self, message: Message) -> None:
        """Home-domain side: the lent instance comes back, state and all."""
        instance = str(message.body.get("instance", ""))
        self._lent.pop(instance, None)
        obj = self._instances.get(instance)
        if obj is not None and not self.controller.is_registered(instance):
            self.register(obj)


class Federation:
    """A set of federated domains plus the inter-domain wiring between them."""

    def __init__(self, sim: Simulator, config: Optional[FederationConfig] = None) -> None:
        self.sim = sim
        self.config = config or FederationConfig()
        self.domains: Dict[str, FederatedDomain] = {}

    def add_domain(
        self,
        name: str,
        *,
        controller: Optional[MBController] = None,
        controller_config: Optional[ControllerConfig] = None,
    ) -> FederatedDomain:
        """Create (and index) one federated domain."""
        if name in self.domains:
            raise ValueError(f"domain {name!r} already exists")
        domain = FederatedDomain(
            self.sim,
            name,
            controller=controller,
            controller_config=controller_config,
            config=self.config,
            federation=self,
        )
        self.domains[name] = domain
        return domain

    def connect(
        self,
        a: str,
        b: str,
        *,
        latency: float = 2e-3,
        bandwidth: float = 12.5e6,
        faults: Optional[FaultPlan] = None,
    ) -> ControlChannel:
        """Wire two domains with an inter-domain channel (WAN by default:
        2 ms one-way, 100 Mbit/s — an order of magnitude worse than the
        intra-domain control channel).  A FaultPlan makes the link lossy and
        enables the reliable delivery layer underneath the gossip."""
        domain_a, domain_b = self.domains[a], self.domains[b]
        channel = ControlChannel(self.sim, name=f"wan-{a}-{b}", latency=latency, bandwidth=bandwidth, faults=faults)
        channel.bind_controller(lambda message, _d=domain_a, _p=b: _d._on_peer_message(_p, message))
        channel.bind_middlebox(lambda message, _d=domain_b, _p=a: _d._on_peer_message(_p, message))
        domain_a.add_peer(PeerLink(b, channel, "a", latency=latency, bandwidth=bandwidth))
        domain_b.add_peer(PeerLink(a, channel, "b", latency=latency, bandwidth=bandwidth))
        return channel

    def connect_all(self, **channel_kwargs) -> List[ControlChannel]:
        """Full-mesh wiring between every pair of domains."""
        names = sorted(self.domains)
        return [
            self.connect(names[i], names[j], **channel_kwargs)
            for i in range(len(names))
            for j in range(i + 1, len(names))
        ]

    def middlebox_object(self, name: str) -> Optional[Any]:
        """Resolve a middlebox object by name across every domain."""
        for domain in self.domains.values():
            if name in domain._instances:
                return domain._instances[name]
        return None

    def live_domains(self) -> List[FederatedDomain]:
        """Domains whose controller process is still up."""
        return [domain for domain in self.domains.values() if domain.alive]

    def crash_domain(self, name: str) -> None:
        """Kill one domain's controller (see :meth:`FederatedDomain.crash`)."""
        self.domains[name].crash()

    def stop(self) -> None:
        """Stop every domain's gossip (clean teardown for tests)."""
        for domain in self.domains.values():
            domain.stop()

    def merged_stats(self) -> ControllerStats:
        """Fleet-wide counters: every domain's stats folded with
        :meth:`ControllerStats.merge`."""
        stats = [domain.controller.stats for domain in self.domains.values()]
        return stats[0].merge(*stats[1:]) if stats else ControllerStats()

    def converged(self) -> bool:
        """True when every live domain agrees on membership, liveness, and
        ownership (identical versioned fingerprints)."""
        live = self.live_domains()
        if len(live) <= 1:
            return True
        first = live[0]
        return all(
            domain.gossip.membership.fingerprint() == first.gossip.membership.fingerprint()
            and domain.gossip.liveness.fingerprint() == first.gossip.liveness.fingerprint()
            and domain.directory.fingerprint() == first.directory.fingerprint()
            for domain in live[1:]
        )

    def run_until_converged(self, *, max_rounds: int = 200) -> int:
        """Drive the simulator one gossip interval at a time until every live
        domain converged; returns the number of intervals consumed.  Raises
        RuntimeError after *max_rounds* (a convergence-bound violation)."""
        interval = self.config.gossip.interval
        for rounds in range(max_rounds + 1):
            if self.converged():
                return rounds
            self.sim.run(until=self.sim.now + interval)
        raise RuntimeError(f"federation failed to converge within {max_rounds} gossip intervals")
