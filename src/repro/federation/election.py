"""Gossip-elected takeover: deterministic successor choice without a ballot.

When a domain's controller is declared dead, exactly one surviving domain
must adopt its orphaned instances and flow ownership — two adopters would
double-register the instances, zero would strand them.  Instead of running a
vote over the (possibly lossy) inter-domain channels, the federation uses
**rendezvous (highest-random-weight) hashing** over the gossiped membership
view: every domain independently scores each live candidate with the stable
keyed hash already used by the shard ring
(:func:`repro.core.sharding.stable_hash`), and the minimum score wins.

Because the score depends only on ``(dead domain, candidate)``, any two
domains whose membership views have converged compute the *same* winner with
zero extra messages — the election is "gossip-elected" in the sense that the
gossip layer's convergence is the agreement mechanism.  If views are briefly
split, the losers' adoption attempts are idempotently skipped (an instance
already adopted elsewhere is simply not re-registered once the ownership
update gossips back).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.sharding import stable_hash


def takeover_score(dead_domain: str, candidate: str) -> int:
    """The rendezvous weight of *candidate* for adopting *dead_domain*."""
    return stable_hash(f"takeover|{dead_domain}|{candidate}")


def elect_successor(dead_domain: str, candidates: Sequence[str]) -> Optional[str]:
    """The unique survivor elected to adopt *dead_domain*'s instances.

    *candidates* is the set of live domains (the dead domain itself is
    excluded if present).  Returns None when no candidate survives.  The
    choice is a pure function of the inputs, so converged membership views
    elect the same successor everywhere.
    """
    field = sorted(c for c in candidates if c != dead_domain)
    if not field:
        return None
    return min(field, key=lambda candidate: (takeover_score(dead_domain, candidate), candidate))


def ranked_successors(dead_domain: str, candidates: Sequence[str]) -> List[str]:
    """All candidates in takeover order (first = elected; rest = fallbacks
    should the winner itself die before completing the adoption)."""
    field = sorted(c for c in candidates if c != dead_domain)
    return sorted(field, key=lambda candidate: (takeover_score(dead_domain, candidate), candidate))
