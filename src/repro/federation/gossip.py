"""Tunable anti-entropy gossip: versioned digests, TTL expiry, fanout selection.

The federation layer (PAPERS.md: Femminella et al.'s gossip-based signaling
dissemination; De Florio & Blondia's tunable gossip family) disseminates two
kinds of soft state between controller domains:

* **instance liveness** — which middlebox instance lives in which domain and
  whether its home controller believes it alive (built from PR 5's heartbeat
  state);
* **flow ownership** — a versioned directory mapping canonical flow-key
  tokens to the domain that owns their state
  (:mod:`repro.federation.directory`).

Both ride on the same machinery defined here: a :class:`VersionedMap` of
last-writer-wins entries whose merge is **idempotent** and **commutative**
(so digests may be duplicated, reordered, or crossed in flight without
divergence), plus the three tunables of the gossip family:

* ``fanout`` — how many peers each domain pushes its digest to per round;
* ``interval`` — the gossip round period (simulated seconds);
* ``ttl`` — how long an unrefreshed *tombstone* entry (``alive=False``
  liveness records of dead instances) survives before it is garbage
  collected from the digest.

All randomness (peer selection) flows through an **injected**
``random.Random`` per the repo's determinism policy (tests/test_determinism)
so a federation run reproduces bit for bit from its seeds.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class GossipConfig:
    """The tunables of the anti-entropy protocol (De Florio & Blondia)."""

    #: Peers each domain pushes its digest to per gossip round.
    fanout: int = 2
    #: Gossip round period (simulated seconds).
    interval: float = 2e-3
    #: Lifetime of unrefreshed tombstone entries before garbage collection.
    ttl: float = 0.25
    #: Seed mixed (with the domain name) into each domain's private RNG.
    seed: int = 0

    def __post_init__(self) -> None:
        """Validate tunable ranges; raises ValueError on malformed configs."""
        if self.fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {self.fanout}")
        if self.interval <= 0:
            raise ValueError(f"interval must be > 0, got {self.interval}")
        if self.ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {self.ttl}")


@dataclass
class VersionedEntry:
    """One last-writer-wins fact: a key, its payload, and who versioned it."""

    key: str
    #: Domain that authored this version of the entry.
    origin: str
    #: Monotonic per-key version; higher versions win merges.
    version: int
    #: JSON-serialisable payload (e.g. ``{"domain": ..., "alive": ...}``).
    value: Dict[str, Any]
    #: Local receipt/refresh time — never on the wire; each receiver stamps
    #: its own clock, and TTL expiry measures against this local stamp.
    stamped_at: float = 0.0

    def as_wire(self) -> Dict[str, Any]:
        """The digest form of the entry (stamped_at stays local)."""
        return {"key": self.key, "origin": self.origin, "version": self.version, "value": dict(self.value)}

    def beats(self, other: "VersionedEntry") -> bool:
        """Deterministic total order: higher version wins; ties go to the
        lexicographically smaller origin so every replica picks the same
        winner when two domains author the same version concurrently."""
        if self.version != other.version:
            return self.version > other.version
        return self.origin < other.origin


class VersionedMap:
    """A mergeable map of :class:`VersionedEntry` facts.

    ``merge`` is idempotent (re-merging a digest changes nothing) and
    commutative (digest arrival order does not matter), which is what lets
    the gossip layer tolerate the duplicated/reordered/lossy inter-domain
    channels the chaos harness injects.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, VersionedEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[VersionedEntry]:
        """The current winning entry for *key*, or None."""
        return self._entries.get(key)

    def value_of(self, key: str) -> Optional[Dict[str, Any]]:
        """The current payload for *key*, or None."""
        entry = self._entries.get(key)
        return entry.value if entry is not None else None

    def items(self) -> List[Tuple[str, VersionedEntry]]:
        """Entries in deterministic (key-sorted) order."""
        return sorted(self._entries.items())

    def put(self, key: str, origin: str, value: Dict[str, Any], now: float) -> VersionedEntry:
        """Author a new version of *key* locally (version = current + 1)."""
        current = self._entries.get(key)
        version = (current.version + 1) if current is not None else 1
        entry = VersionedEntry(key=key, origin=origin, version=version, value=dict(value), stamped_at=now)
        self._entries[key] = entry
        return entry

    def merge(self, digest: Sequence[Dict[str, Any]], now: float) -> List[str]:
        """Fold a received digest in; returns the keys whose winner changed.

        An incoming entry replaces the current one only when it *beats* it
        (higher version, or same version from a smaller origin).  Receiving
        the exact current version refreshes the local stamp — proof the
        origin still asserts the fact — without counting as a change, which
        is what makes the merge idempotent.
        """
        changed: List[str] = []
        for wire in digest:
            incoming = VersionedEntry(
                key=str(wire["key"]),
                origin=str(wire["origin"]),
                version=int(wire["version"]),
                value=dict(wire.get("value", {})),
                stamped_at=now,
            )
            current = self._entries.get(incoming.key)
            if current is None or incoming.beats(current):
                self._entries[incoming.key] = incoming
                changed.append(incoming.key)
            elif incoming.version == current.version and incoming.origin == current.origin:
                current.stamped_at = now
        return changed

    def expire(self, now: float, ttl: float, *, tombstones_only: bool = True) -> List[str]:
        """Drop entries unrefreshed for longer than *ttl*; returns dropped keys.

        By default only tombstones (payloads carrying ``alive=False``) are
        garbage collected — durable facts like flow ownership never age out;
        pass ``tombstones_only=False`` for maps whose every entry is soft
        state.
        """
        dropped = [
            key
            for key, entry in self._entries.items()
            if now - entry.stamped_at > ttl and (not tombstones_only or entry.value.get("alive") is False)
        ]
        for key in dropped:
            del self._entries[key]
        return sorted(dropped)

    def digest(self) -> List[Dict[str, Any]]:
        """The wire form of every entry, in deterministic key order."""
        return [entry.as_wire() for _, entry in self.items()]

    def fingerprint(self) -> Tuple[Tuple[str, int, str, str], ...]:
        """A hashable summary used to test convergence between replicas."""
        return tuple(
            (key, entry.version, entry.origin, json.dumps(entry.value, sort_keys=True))
            for key, entry in self.items()
        )


@dataclass
class GossipState:
    """The per-domain soft state the gossip rounds disseminate.

    ``membership`` tracks controller domains (``{"alive": bool}``),
    ``liveness`` tracks middlebox instances (``{"domain": str,
    "alive": bool}``); the ownership directory keeps its own
    :class:`VersionedMap` (see :mod:`repro.federation.directory`) but is
    carried in the same digest message.
    """

    membership: VersionedMap = field(default_factory=VersionedMap)
    liveness: VersionedMap = field(default_factory=VersionedMap)

    def live_domains(self) -> List[str]:
        """Domains currently believed alive, sorted."""
        return sorted(key for key, entry in self.membership.items() if entry.value.get("alive"))

    def instances_of(self, domain: str, *, alive: bool = True) -> List[str]:
        """Instances homed in *domain* (optionally only live ones), sorted."""
        return sorted(
            key
            for key, entry in self.liveness.items()
            if entry.value.get("domain") == domain and (not alive or entry.value.get("alive"))
        )


def choose_peers(rng: random.Random, peers: Sequence[str], fanout: int) -> List[str]:
    """Pick the gossip targets for one round: ``min(fanout, len(peers))`` of
    *peers*, uniformly without replacement from the injected *rng* (sorted
    first so the draw depends only on the rng state, not dict order)."""
    ordered = sorted(peers)
    if len(ordered) <= fanout:
        return ordered
    return sorted(rng.sample(ordered, fanout))
