"""Versioned flow-ownership directory: canonical flow key -> owning domain.

Every stateful flow in the federation has exactly one owning domain — the
domain whose controller brokered the last move of its state.  The directory
is a :class:`~repro.federation.gossip.VersionedMap` keyed by the **canonical
flow token** (:meth:`repro.core.sharding.ShardRing.canonical_token`, the
bidirectional five-tuple), so both packet directions of a flow resolve to the
same entry and the federation agrees with the intra-controller shard ring on
what "one flow" means.

Ownership changes are authored by the domain that drove them (a completed
cross-domain move, or the elected survivor of a takeover) and disseminated by
gossip; last-writer-wins versioning makes concurrent claims converge
deterministically on every replica.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..core.flowspace import FlowKey
from ..core.sharding import ShardRing
from .gossip import VersionedMap


class OwnershipDirectory:
    """The versioned map of flow-key tokens to owning domains."""

    def __init__(self) -> None:
        self._map = VersionedMap()

    def __len__(self) -> int:
        return len(self._map)

    @staticmethod
    def token_of(key: FlowKey) -> str:
        """The directory token of a flow: its canonical bidirectional tuple."""
        return ShardRing.canonical_token(key)

    def claim(self, key: FlowKey, domain: str, now: float) -> str:
        """Author a new ownership version for one flow; returns its token."""
        token = self.token_of(key)
        self._map.put(token, domain, {"domain": domain}, now)
        return token

    def claim_flows(self, keys: Iterable[FlowKey], domain: str, now: float) -> List[str]:
        """Claim every flow in *keys* for *domain*; returns the tokens claimed."""
        return sorted({self.claim(key, domain, now) for key in keys})

    def owner_of(self, key: FlowKey) -> Optional[str]:
        """The domain owning *key*'s state, or None when unknown."""
        value = self._map.value_of(self.token_of(key))
        return value.get("domain") if value else None

    def owner_of_token(self, token: str) -> Optional[str]:
        """Like :meth:`owner_of` but for an already-canonical token."""
        value = self._map.value_of(token)
        return value.get("domain") if value else None

    def tokens_owned_by(self, domain: str) -> List[str]:
        """Every token currently mapped to *domain*, sorted."""
        return sorted(token for token, entry in self._map.items() if entry.value.get("domain") == domain)

    def reassign(self, from_domain: str, to_domain: str, now: float) -> List[str]:
        """Re-home every flow of *from_domain* (takeover); returns the tokens."""
        tokens = self.tokens_owned_by(from_domain)
        for token in tokens:
            self._map.put(token, to_domain, {"domain": to_domain}, now)
        return tokens

    def assign_token(self, token: str, domain: str, now: float) -> None:
        """Author a new ownership version for one existing token (the
        takeover-revert path hands specific tokens back to a healed domain)."""
        self._map.put(token, domain, {"domain": domain}, now)

    # -- gossip plumbing ---------------------------------------------------------------

    def merge(self, digest: Sequence[Dict[str, Any]], now: float) -> List[str]:
        """Fold a peer's ownership digest in; returns the tokens that changed."""
        return self._map.merge(digest, now)

    def digest(self) -> List[Dict[str, Any]]:
        """The wire form of the directory (deterministic token order)."""
        return self._map.digest()

    def fingerprint(self):
        """Hashable convergence summary (see :meth:`VersionedMap.fingerprint`)."""
        return self._map.fingerprint()
