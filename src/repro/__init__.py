"""OpenMB: a framework for software-defined middlebox networking.

This package is a from-scratch Python reproduction of "Design and
Implementation of a Framework for Software-Defined Middlebox Networking"
(Gember et al., 2013).  It contains:

* :mod:`repro.core` — the paper's contribution: the middlebox state taxonomy,
  the MB-facing (southbound) API, the MB controller, and the control
  (northbound) API.
* :mod:`repro.net` — the SDN substrate: a discrete-event network simulator
  with OpenFlow-style switches and an SDN controller.
* :mod:`repro.middleboxes` — OpenMB-enabled middleboxes built from scratch:
  an IDS, a passive monitor, an RE encoder/decoder pair, a NAT, a load
  balancer, and a firewall.
* :mod:`repro.apps` — control applications (live migration, elastic scaling,
  failure recovery) and ready-made scenario topologies.
* :mod:`repro.baselines` — the comparison systems: VM snapshots,
  configuration+routing-only control, and Split/Merge-style suspension.
* :mod:`repro.traffic` — synthetic workload generators and trace replay.
* :mod:`repro.analysis` — measurement, comparison, and report formatting.
* :mod:`repro.testing` — the deterministic seeded chaos harness (fault
  injection, scripted crashes, invariant checking).
"""

from . import analysis, apps, baselines, core, middleboxes, net, testing, traffic
from .core import (
    ControllerConfig,
    FlowKey,
    FlowPattern,
    MBController,
    NorthboundAPI,
    StateRole,
    StateScope,
)
from .net import Simulator, Topology

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "apps",
    "baselines",
    "core",
    "middleboxes",
    "net",
    "testing",
    "traffic",
    "FlowKey",
    "FlowPattern",
    "MBController",
    "ControllerConfig",
    "NorthboundAPI",
    "StateRole",
    "StateScope",
    "Simulator",
    "Topology",
    "__version__",
]
