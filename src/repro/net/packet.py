"""Packet model.

A :class:`Packet` carries the header fields middleboxes and switches match on
(the five-tuple plus TCP flags), a payload, and bookkeeping used by the
evaluation (creation time, per-hop latency accounting, and middlebox
annotations such as redundancy-elimination shims).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Optional

from ..core.flowspace import PROTO_TCP, PROTO_UDP, FlowKey

#: Bytes of layer-2/3/4 headers accounted for in a packet's wire size.
HEADER_BYTES = 54

_packet_ids = itertools.count(1)

#: TCP flag names used by the simulated middleboxes.
SYN = "SYN"
ACK = "ACK"
FIN = "FIN"
RST = "RST"
PSH = "PSH"


@dataclass
class Packet:
    """One simulated packet."""

    nw_src: str
    nw_dst: str
    nw_proto: int = PROTO_TCP
    tp_src: int = 0
    tp_dst: int = 0
    payload: bytes = b""
    flags: FrozenSet[str] = frozenset()
    seq: int = 0
    created_at: float = 0.0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: Free-form annotations added by middleboxes (e.g. RE shim descriptors).
    annotations: Dict[str, object] = field(default_factory=dict)
    #: Overrides the wire size when a middlebox shrank the payload (RE encoding).
    encoded_size: Optional[int] = None

    # -- identity --------------------------------------------------------------

    def flow_key(self) -> FlowKey:
        """The directional flow key for this packet."""
        return FlowKey(self.nw_proto, self.nw_src, self.nw_dst, self.tp_src, self.tp_dst)

    @property
    def payload_size(self) -> int:
        return len(self.payload)

    @property
    def wire_size(self) -> int:
        """Bytes the packet occupies on the wire (headers plus effective payload)."""
        if self.encoded_size is not None:
            return HEADER_BYTES + self.encoded_size
        return HEADER_BYTES + len(self.payload)

    def has_flag(self, flag: str) -> bool:
        return flag in self.flags

    @property
    def is_tcp(self) -> bool:
        return self.nw_proto == PROTO_TCP

    @property
    def is_udp(self) -> bool:
        return self.nw_proto == PROTO_UDP

    # -- construction helpers --------------------------------------------------

    def copy(self) -> "Packet":
        """Return an independent copy with a fresh packet id.

        Used by baselines that duplicate traffic and by the RE encoder when it
        emits an encoded version of a packet.
        """
        duplicate = replace(self, packet_id=next(_packet_ids))
        duplicate.annotations = dict(self.annotations)
        return duplicate

    def reply(self, payload: bytes = b"", flags: FrozenSet[str] = frozenset()) -> "Packet":
        """Build a packet in the reverse direction of this one."""
        return Packet(
            nw_src=self.nw_dst,
            nw_dst=self.nw_src,
            nw_proto=self.nw_proto,
            tp_src=self.tp_dst,
            tp_dst=self.tp_src,
            payload=payload,
            flags=flags,
            created_at=self.created_at,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(sorted(flag[0] for flag in self.flags))
        return (
            f"<Packet #{self.packet_id} {self.nw_src}:{self.tp_src}->"
            f"{self.nw_dst}:{self.tp_dst} proto={self.nw_proto} len={self.payload_size} {flags}>"
        )


def tcp_packet(
    nw_src: str,
    nw_dst: str,
    tp_src: int,
    tp_dst: int,
    payload: bytes = b"",
    *,
    flags: FrozenSet[str] = frozenset({ACK}),
    seq: int = 0,
    created_at: float = 0.0,
) -> Packet:
    """Convenience constructor for a TCP packet."""
    return Packet(
        nw_src=nw_src,
        nw_dst=nw_dst,
        nw_proto=PROTO_TCP,
        tp_src=tp_src,
        tp_dst=tp_dst,
        payload=payload,
        flags=frozenset(flags),
        seq=seq,
        created_at=created_at,
    )


def udp_packet(
    nw_src: str,
    nw_dst: str,
    tp_src: int,
    tp_dst: int,
    payload: bytes = b"",
    *,
    created_at: float = 0.0,
) -> Packet:
    """Convenience constructor for a UDP packet."""
    return Packet(
        nw_src=nw_src,
        nw_dst=nw_dst,
        nw_proto=PROTO_UDP,
        tp_src=tp_src,
        tp_dst=tp_dst,
        payload=payload,
        created_at=created_at,
    )
