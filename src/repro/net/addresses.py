"""Address allocation helpers for building simulated topologies and workloads."""

from __future__ import annotations

from typing import Iterator, List

from ..core.flowspace import IPv4Prefix, int_to_ip, ip_to_int


class SubnetAllocator:
    """Hands out host addresses from an IPv4 prefix in order.

    Trace generators and topology builders use one allocator per logical site
    (for example ``1.1.1.0/24`` for data-center A's application VMs and
    ``1.1.2.0/24`` for data-center B, matching the prefixes used in the
    paper's migration example).
    """

    def __init__(self, prefix: str) -> None:
        self.prefix = IPv4Prefix.parse(prefix)
        if self.prefix.length >= 31:
            raise ValueError("subnet too small to allocate host addresses")
        self._next_host = 1
        self._max_host = (1 << (32 - self.prefix.length)) - 2

    @property
    def cidr(self) -> str:
        """The prefix in CIDR notation."""
        return str(self.prefix)

    def allocate(self) -> str:
        """Return the next unused host address in the subnet."""
        if self._next_host > self._max_host:
            raise ValueError(f"subnet {self.cidr} exhausted")
        address = int_to_ip(self.prefix.network + self._next_host)
        self._next_host += 1
        return address

    def allocate_many(self, count: int) -> List[str]:
        """Return *count* consecutive host addresses."""
        return [self.allocate() for _ in range(count)]

    def contains(self, address: str) -> bool:
        """Return True when *address* belongs to this subnet."""
        return self.prefix.contains_ip(address)

    def hosts(self) -> Iterator[str]:
        """Iterate over every allocatable host address in the subnet."""
        for offset in range(1, self._max_host + 1):
            yield int_to_ip(self.prefix.network + offset)


def mac_for_index(index: int) -> str:
    """Deterministic locally administered MAC address for a node index."""
    if not 0 <= index < (1 << 40):
        raise ValueError("index out of range for a MAC address")
    octets = [0x02] + [(index >> shift) & 0xFF for shift in (32, 24, 16, 8, 0)]
    return ":".join(f"{octet:02x}" for octet in octets)


def same_subnet(address_a: str, address_b: str, prefix_length: int = 24) -> bool:
    """Return True when two addresses share the same prefix of the given length."""
    mask = IPv4Prefix(0, prefix_length).mask if prefix_length else 0
    return (ip_to_int(address_a) & mask) == (ip_to_int(address_b) & mask)
