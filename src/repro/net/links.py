"""Links between network nodes, with propagation latency and bandwidth.

A link connects one port on each of two nodes.  Transmitting a packet takes
``latency + wire_size / bandwidth`` simulated seconds; packets sent in quick
succession queue behind one another on the link (a simple store-and-forward
serialisation model), which is what produces the queueing component of the
per-packet latency measurements in the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .packet import Packet
from .simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checking only
    from .topology import Node


#: Default link latency (seconds) — 50 microseconds, a LAN-scale value.
DEFAULT_LATENCY = 50e-6

#: Default link bandwidth (bytes/second) — 1 Gbps, the paper's testbed NICs.
DEFAULT_BANDWIDTH = 125_000_000.0


@dataclass
class LinkStats:
    """Counters kept per link end."""

    packets: int = 0
    bytes: int = 0
    drops: int = 0


class Link:
    """A bidirectional point-to-point link."""

    def __init__(
        self,
        sim: Simulator,
        node_a: "Node",
        port_a: int,
        node_b: "Node",
        port_b: int,
        *,
        latency: float = DEFAULT_LATENCY,
        bandwidth: float = DEFAULT_BANDWIDTH,
        name: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.node_a = node_a
        self.port_a = port_a
        self.node_b = node_b
        self.port_b = port_b
        self.latency = latency
        self.bandwidth = bandwidth
        self.name = name or f"{node_a.name}:{port_a}<->{node_b.name}:{port_b}"
        self.up = True
        self.stats_a_to_b = LinkStats()
        self.stats_b_to_a = LinkStats()
        # Earliest time each direction's transmitter is free (serialisation queue).
        self._free_at = {node_a.name: 0.0, node_b.name: 0.0}

    # -- endpoint helpers -------------------------------------------------------

    def other_end(self, node: "Node") -> "Node":
        """The node on the opposite end from *node*."""
        if node is self.node_a:
            return self.node_b
        if node is self.node_b:
            return self.node_a
        raise ValueError(f"{node.name} is not attached to link {self.name}")

    def port_on(self, node: "Node") -> int:
        """The port number this link occupies on *node*."""
        if node is self.node_a:
            return self.port_a
        if node is self.node_b:
            return self.port_b
        raise ValueError(f"{node.name} is not attached to link {self.name}")

    def _stats_from(self, node: "Node") -> LinkStats:
        return self.stats_a_to_b if node is self.node_a else self.stats_b_to_a

    # -- transmission -----------------------------------------------------------

    def transmit(self, packet: Packet, sender: "Node") -> float:
        """Send *packet* from *sender* toward the other end.

        Returns the simulated delivery time.  A downed link drops the packet
        (delivery time is returned as ``-1``).
        """
        stats = self._stats_from(sender)
        if not self.up:
            stats.drops += 1
            return -1.0
        receiver = self.other_end(sender)
        in_port = self.port_on(receiver)
        serialization = packet.wire_size / self.bandwidth if self.bandwidth else 0.0
        start = max(self.sim.now, self._free_at[sender.name])
        finish = start + serialization
        self._free_at[sender.name] = finish
        delivery_time = finish + self.latency
        stats.packets += 1
        stats.bytes += packet.wire_size
        self.sim.schedule_at(delivery_time, receiver.receive, packet, in_port)
        return delivery_time

    def set_up(self, up: bool) -> None:
        """Bring the link up or down (downed links silently drop traffic)."""
        self.up = up

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} latency={self.latency} bw={self.bandwidth}>"
