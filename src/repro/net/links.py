"""Links between network nodes, with latency, bandwidth, and a fault model.

A link connects one port on each of two nodes.  Transmitting a packet takes
``latency + wire_size / bandwidth`` simulated seconds; packets sent in quick
succession queue behind one another on the link (a simple store-and-forward
serialisation model), which is what produces the queueing component of the
per-packet latency measurements in the evaluation.

Each direction of the wire is a :meth:`~repro.runtime.Runtime.lane` — the
same serialisation abstraction the control channels and controller shards run
on — so the realtime runtime drives data-plane wires exactly like control
wires (one asyncio task per direction), while the deterministic simulator
keeps the seed's ``free_at`` tick arithmetic bit for bit.

Two opt-in layers make the data plane imperfect and then repair it:

* a seeded :class:`LinkFaultPlan` (mirroring
  :class:`repro.core.channel.FaultPlan`) injects per-direction random loss,
  corruption loss, and reordering delay, plus scripted one-shot faults
  ("corrupt the 7th a→b frame") — all drawn from one ``random.Random(seed)``
  per link so fault sequences reproduce bit for bit;
* a LinkGuardian-style link-local protection protocol
  (:mod:`repro.net.protection`) between the two endpoints masks those losses
  with sub-RTT retransmission; :meth:`Link.enable_protection` attaches it.

Both layers are off by default: a link constructed without a fault plan and
without protection behaves — and schedules — exactly like the seed
implementation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from .packet import Packet
from .simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checking only
    from .protection import LinkProtection, ProtectionConfig
    from .topology import Node


#: Default link latency (seconds) — 50 microseconds, a LAN-scale value.
DEFAULT_LATENCY = 50e-6

#: Default link bandwidth (bytes/second) — 1 Gbps, the paper's testbed NICs.
DEFAULT_BANDWIDTH = 125_000_000.0

#: Direction labels used by fault plans and stats (a→b is node_a transmitting).
A_TO_B = "a_to_b"
B_TO_A = "b_to_a"


@dataclass
class LinkStats:
    """Counters kept per link direction (indexed by the transmitting end)."""

    packets: int = 0
    bytes: int = 0
    #: Frames lost outright: downed link, or the fault plan's random loss.
    drops: int = 0
    #: Frames lost to corruption (failed CRC at the receiver's MAC): the
    #: receiving end sees *that* something arrived but not what — the loss
    #: class LinkGuardian-style protection detects by sequence gap.
    corrupted: int = 0
    #: Frames the fault plan delayed past a successor's delivery window.
    reordered: int = 0
    #: Frames re-sent by the link-local protection protocol in this direction.
    retransmits: int = 0
    #: Protection control frames (ACK/NACK) sent in this direction.
    ctrl_frames: int = 0

    @property
    def lost(self) -> int:
        """Frames this direction lost on the wire (drops plus corruption)."""
        return self.drops + self.corrupted


# =========================================================================================
# Fault model (mirrors core.channel.FaultPlan at the data-plane layer)
# =========================================================================================


@dataclass
class LinkFaultProfile:
    """Random fault probabilities for one direction of a link.

    ``loss`` and ``corruption`` are per-frame probabilities of the frame
    disappearing (the latter counted separately as corruption loss, the class
    of loss link-local protection is built to mask); ``reorder`` is the
    per-frame probability of the frame being delayed past roughly one
    successor's delivery window (expressed via extra delivery latency).
    """

    loss: float = 0.0
    corruption: float = 0.0
    reorder: float = 0.0

    @property
    def active(self) -> bool:
        """True when any fault of this profile can actually fire."""
        return self.loss > 0 or self.corruption > 0 or self.reorder > 0


@dataclass
class ScriptedLinkFault:
    """One deterministic, one-shot fault from a scenario's script.

    ``kind`` is ``"drop"`` or ``"corrupt"``; the fault consumes the *nth*
    data frame (1-based; protection control frames are not counted)
    transmitted in *direction* (:data:`A_TO_B` or :data:`B_TO_A`).
    """

    kind: str
    direction: str = A_TO_B
    nth: int = 0
    #: Set once the fault has fired (one-shot bookkeeping).
    fired: bool = False


class LinkFaultPlan:
    """A seeded, deterministic fault-injection plan for one link.

    All randomness flows from a single ``random.Random(seed)``, so two runs
    with the same plan (and the same simulated workload) lose and corrupt
    byte-for-byte identical frames — the same reproducibility contract as
    :class:`repro.core.channel.FaultPlan` on the control plane.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        a_to_b: Optional[LinkFaultProfile] = None,
        b_to_a: Optional[LinkFaultProfile] = None,
        scripted: Optional[List[ScriptedLinkFault]] = None,
    ) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.a_to_b = a_to_b or LinkFaultProfile()
        self.b_to_a = b_to_a or LinkFaultProfile()
        self.scripted: List[ScriptedLinkFault] = list(scripted or [])

    @classmethod
    def symmetric(
        cls,
        seed: int = 0,
        *,
        loss: float = 0.0,
        corruption: float = 0.0,
        reorder: float = 0.0,
        scripted: Optional[List[ScriptedLinkFault]] = None,
    ) -> "LinkFaultPlan":
        """A plan applying the same fault probabilities in both directions."""
        return cls(
            seed,
            a_to_b=LinkFaultProfile(loss=loss, corruption=corruption, reorder=reorder),
            b_to_a=LinkFaultProfile(loss=loss, corruption=corruption, reorder=reorder),
            scripted=scripted,
        )

    def profile_for(self, direction: str) -> LinkFaultProfile:
        """The random-fault profile applied to *direction* of the link."""
        return self.a_to_b if direction == A_TO_B else self.b_to_a

    def take_scripted(self, direction: str, index: int) -> Optional[str]:
        """Consume a scripted fault for the *index*-th frame of *direction*.

        Returns the fault kind (``"drop"`` / ``"corrupt"``) or None.
        """
        for fault in self.scripted:
            if not fault.fired and fault.direction == direction and fault.nth == index:
                fault.fired = True
                return fault.kind
        return None


# =========================================================================================
# The link
# =========================================================================================


class Link:
    """A bidirectional point-to-point link."""

    def __init__(
        self,
        sim: Simulator,
        node_a: "Node",
        port_a: int,
        node_b: "Node",
        port_b: int,
        *,
        latency: float = DEFAULT_LATENCY,
        bandwidth: float = DEFAULT_BANDWIDTH,
        name: Optional[str] = None,
        faults: Optional[LinkFaultPlan] = None,
    ) -> None:
        self.sim = sim
        self.node_a = node_a
        self.port_a = port_a
        self.node_b = node_b
        self.port_b = port_b
        self.latency = latency
        self.bandwidth = bandwidth
        self.name = name or f"{node_a.name}:{port_a}<->{node_b.name}:{port_b}"
        self.up = True
        self.faults = faults
        self.stats_a_to_b = LinkStats()
        self.stats_b_to_a = LinkStats()
        #: LinkGuardian-style link-local protection; None = unprotected.
        self.protection: Optional["LinkProtection"] = None
        #: One serialisation lane per direction, keyed by endpoint *identity*
        #: (never by name: two nodes that happen to share a name must not
        #: share a transmitter).  On the realtime runtime each direction is
        #: its own asyncio task, exactly like a control-channel wire.
        self._wires = {
            id(node_a): sim.lane(f"{self.name}:{A_TO_B}"),
            id(node_b): sim.lane(f"{self.name}:{B_TO_A}"),
        }
        #: Data frames transmitted per direction — the index space scripted
        #: "fault the nth frame" faults refer to (control frames excluded).
        self._sent = {A_TO_B: 0, B_TO_A: 0}

    # -- endpoint helpers -------------------------------------------------------

    def other_end(self, node: "Node") -> "Node":
        """The node on the opposite end from *node*."""
        if node is self.node_a:
            return self.node_b
        if node is self.node_b:
            return self.node_a
        raise ValueError(f"{node.name} is not attached to link {self.name}")

    def port_on(self, node: "Node") -> int:
        """The port number this link occupies on *node*."""
        if node is self.node_a:
            return self.port_a
        if node is self.node_b:
            return self.port_b
        raise ValueError(f"{node.name} is not attached to link {self.name}")

    def direction_from(self, node: "Node") -> str:
        """The direction label (:data:`A_TO_B` / :data:`B_TO_A`) for frames *node* sends."""
        if node is self.node_a:
            return A_TO_B
        if node is self.node_b:
            return B_TO_A
        raise ValueError(f"{node.name} is not attached to link {self.name}")

    def _stats_from(self, node: "Node") -> LinkStats:
        return self.stats_a_to_b if node is self.node_a else self.stats_b_to_a

    def stats_for(self, direction: str) -> LinkStats:
        """The counters of one direction by label."""
        return self.stats_a_to_b if direction == A_TO_B else self.stats_b_to_a

    # -- protection --------------------------------------------------------------

    def enable_protection(self, config: Optional["ProtectionConfig"] = None) -> "LinkProtection":
        """Attach LinkGuardian-style link-local protection to both directions.

        The two endpoints then run the sequence-stamp / hold-buffer /
        retransmit protocol of :mod:`repro.net.protection`; corruption and
        random loss are masked from the nodes above without end-to-end
        involvement.  Returns the attached :class:`LinkProtection`.
        """
        from .protection import LinkProtection, ProtectionConfig

        self.protection = LinkProtection(self, config or ProtectionConfig())
        return self.protection

    # -- transmission -----------------------------------------------------------

    def transmit(self, packet: Packet, sender: "Node") -> Optional[float]:
        """Send *packet* from *sender* toward the other end.

        Returns the simulated delivery time, or ``None`` when the frame was
        lost on the wire (downed link, random loss, or corruption) — callers
        must never treat a drop as a valid delivery time.  With protection
        enabled the frame is sequence-stamped and tracked for link-local
        retransmission first.
        """
        if self.protection is not None:
            return self.protection.send(packet, sender)
        return self.transmit_raw(packet, sender)

    def transmit_raw(self, packet: Packet, sender: "Node") -> Optional[float]:
        """One physical transmission attempt, bypassing protection.

        This is the wire itself: serialisation-lane occupancy, propagation
        latency, and the fault plan.  The protection layer calls this for
        every (re)transmission and control frame; unprotected links come here
        straight from :meth:`transmit`.
        """
        stats = self._stats_from(sender)
        if not self.up:
            stats.drops += 1
            return None
        direction = self.direction_from(sender)
        receiver = self.other_end(sender)
        in_port = self.port_on(receiver)
        serialization = packet.wire_size / self.bandwidth if self.bandwidth else 0.0
        wire = self._wires[id(sender)]
        finish = wire.reserve(serialization)
        delivery_time = finish + self.latency
        stats.packets += 1
        stats.bytes += packet.wire_size
        is_ctrl = self.protection is not None and self.protection.is_ctrl(packet)
        if is_ctrl:
            stats.ctrl_frames += 1
        else:
            self._sent[direction] += 1
        if self.faults is not None:
            delivery_time = self._apply_faults(direction, stats, delivery_time, counted=not is_ctrl)
            if delivery_time is None:
                return None
        if self.protection is not None:
            wire.dispatch_at(delivery_time, self.protection.on_arrival, packet, receiver, in_port)
        else:
            wire.dispatch_at(delivery_time, receiver.receive, packet, in_port)
        return delivery_time

    def _apply_faults(
        self, direction: str, stats: LinkStats, delivery_time: float, *, counted: bool
    ) -> Optional[float]:
        """Mutate one delivery according to the fault plan; None = lost.

        The random draws happen in a fixed order for every frame (loss,
        corruption, reorder) so a given seed always produces the same fault
        sequence regardless of which probabilities are zero.
        """
        plan = self.faults
        if counted:
            scripted = plan.take_scripted(direction, self._sent[direction])
            if scripted is not None:
                if scripted == "corrupt":
                    stats.corrupted += 1
                else:
                    stats.drops += 1
                return None
        profile = plan.profile_for(direction)
        if not profile.active:
            return delivery_time
        rng = plan.rng
        if rng.random() < profile.loss:
            stats.drops += 1
            return None
        if rng.random() < profile.corruption:
            stats.corrupted += 1
            return None
        if rng.random() < profile.reorder:
            # Push the frame past roughly one successor's delivery window.
            stats.reordered += 1
            delivery_time += 2.0 * self.latency * (1.0 + rng.random())
        return delivery_time

    def set_up(self, up: bool) -> None:
        """Bring the link up or down (downed links silently drop traffic)."""
        self.up = up
        if not up and self.protection is not None:
            self.protection.on_link_down()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} latency={self.latency} bw={self.bandwidth}>"
