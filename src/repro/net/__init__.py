"""Network substrate: discrete-event simulator, switches, links, SDN controller."""

from .flowtable import Action, ActionType, FlowRule, FlowTable
from .links import (
    DEFAULT_BANDWIDTH,
    DEFAULT_LATENCY,
    Link,
    LinkFaultPlan,
    LinkFaultProfile,
    LinkStats,
    ScriptedLinkFault,
)
from .monitoring import DeliveryRecorder, LatencyProbe
from .packet import ACK, FIN, PSH, RST, SYN, Packet, tcp_packet, udp_packet
from .protection import LinkProtection, ProtectionConfig, ProtectionStats, ProtectionSummary, summarize
from .sdn import DEFAULT_RULE_INSTALL_LATENCY, RouteHandle, SDNController
from .simulator import Future, Simulator, all_of
from .switch import Switch, SwitchStats
from .topology import Host, Node, Topology

__all__ = [
    "Action",
    "ActionType",
    "FlowRule",
    "FlowTable",
    "Link",
    "LinkFaultPlan",
    "LinkFaultProfile",
    "LinkStats",
    "ScriptedLinkFault",
    "LinkProtection",
    "ProtectionConfig",
    "ProtectionStats",
    "ProtectionSummary",
    "summarize",
    "DEFAULT_BANDWIDTH",
    "DEFAULT_LATENCY",
    "DEFAULT_RULE_INSTALL_LATENCY",
    "DeliveryRecorder",
    "LatencyProbe",
    "Packet",
    "tcp_packet",
    "udp_packet",
    "SYN",
    "ACK",
    "FIN",
    "RST",
    "PSH",
    "RouteHandle",
    "SDNController",
    "Future",
    "Simulator",
    "all_of",
    "Switch",
    "SwitchStats",
    "Host",
    "Node",
    "Topology",
]
