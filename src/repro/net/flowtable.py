"""OpenFlow-style flow tables: prioritized match/action rules.

Switches forward packets according to the highest-priority rule whose
:class:`~repro.core.flowspace.FlowPattern` matches the packet.  Rules carry
a cookie so the SDN controller can remove everything it installed for one
routing decision in a single call.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from ..core.flowspace import FlowPattern
from .packet import Packet

_rule_ids = itertools.count(1)


class ActionType(enum.Enum):
    """What a switch does with a matching packet."""

    OUTPUT = "output"
    DROP = "drop"
    CONTROLLER = "controller"
    BUFFER = "buffer"


@dataclass(frozen=True)
class Action:
    """One forwarding action; ``port`` is meaningful only for OUTPUT."""

    type: ActionType
    port: Optional[int] = None

    @classmethod
    def output(cls, port: int) -> "Action":
        return cls(ActionType.OUTPUT, port)

    @classmethod
    def drop(cls) -> "Action":
        return cls(ActionType.DROP)

    @classmethod
    def to_controller(cls) -> "Action":
        return cls(ActionType.CONTROLLER)

    @classmethod
    def buffer(cls) -> "Action":
        """Hold matching packets at the switch (used by the Split/Merge baseline)."""
        return cls(ActionType.BUFFER)


@dataclass
class FlowRule:
    """One flow-table entry."""

    pattern: FlowPattern
    actions: List[Action]
    priority: int = 100
    cookie: str = ""
    rule_id: int = field(default_factory=lambda: next(_rule_ids))
    packets_matched: int = 0
    bytes_matched: int = 0
    installed_at: float = 0.0

    def matches(self, packet: Packet) -> bool:
        return self.pattern.matches(packet.flow_key())

    def record(self, packet: Packet) -> None:
        self.packets_matched += 1
        self.bytes_matched += packet.wire_size


class FlowTable:
    """A prioritized rule list with longest-priority-first matching."""

    def __init__(self) -> None:
        self._rules: List[FlowRule] = []

    def add(self, rule: FlowRule) -> FlowRule:
        """Install *rule*, keeping the table ordered by descending priority.

        Ties break toward the more specific pattern, then toward the most
        recently installed rule (so a re-route of the same pattern wins).
        """
        self._rules.append(rule)
        self._rules.sort(key=lambda r: (-r.priority, -r.pattern.specificity, -r.rule_id))
        return rule

    def remove(self, rule: FlowRule) -> bool:
        """Remove a specific rule; returns False when it was not present."""
        try:
            self._rules.remove(rule)
        except ValueError:
            return False
        return True

    def remove_by_cookie(self, cookie: str) -> int:
        """Remove every rule with the given cookie; returns how many were removed."""
        before = len(self._rules)
        self._rules = [rule for rule in self._rules if rule.cookie != cookie]
        return before - len(self._rules)

    def remove_matching(self, pattern: FlowPattern) -> int:
        """Remove every rule whose pattern equals *pattern*."""
        before = len(self._rules)
        self._rules = [rule for rule in self._rules if rule.pattern != pattern]
        return before - len(self._rules)

    def lookup(self, packet: Packet) -> Optional[FlowRule]:
        """Return the matching rule with the highest priority, or None on a miss."""
        for rule in self._rules:
            if rule.matches(packet):
                return rule
        return None

    def rules(self) -> List[FlowRule]:
        """The installed rules in match order (a copy)."""
        return list(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule: FlowRule) -> bool:
        return rule in self._rules
