"""Discrete-event simulation kernel.

Every component of the reproduction — switches, links, middleboxes, the MB
controller, control applications, traffic replay — runs on a single simulated
clock provided by :class:`Simulator`.  The kernel supplies:

* time-ordered callback scheduling (:meth:`Simulator.schedule`);
* :class:`Future` — a one-shot completion token with callbacks, used for
  operation handles returned by the northbound API;
* generator-based processes (:meth:`Simulator.process`) so control
  applications can be written as straight-line sequences of steps that
  ``yield`` the futures or delays they wait on.

The simulated clock is what makes the paper's race conditions reproducible:
packets in flight when a routing update lands, re-process events racing puts,
and quiescence timers all happen at explicit simulated times.

:class:`Simulator` is also the **reference implementation of the runtime
scheduling interface** (see :mod:`repro.runtime`): every component schedules
exclusively through ``now`` / ``schedule`` / ``schedule_at`` / ``event`` /
``timeout`` / ``process`` / ``lane`` / ``run`` / ``run_until``, so the same
controller, channels, and middleboxes run unchanged on the wall-clock
:class:`~repro.runtime.RealtimeRuntime`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from ..core.errors import SimulationError, StuckFutureError


class Future:
    """A one-shot completion token tied to a simulator.

    A future is *pending* until :meth:`succeed` or :meth:`fail` is called
    exactly once; callbacks registered with :meth:`add_done_callback` run at
    the simulated time of completion.
    """

    __slots__ = ("sim", "_done", "_result", "_exception", "_callbacks", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._done = False
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["Future"], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    @property
    def result(self) -> Any:
        """Result of the future; raises the stored exception for failed futures."""
        if not self._done:
            raise SimulationError(f"future {self.name or id(self)} is not complete")
        if self._exception is not None:
            raise self._exception
        return self._result

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    def succeed(self, result: Any = None) -> None:
        """Complete the future successfully."""
        self._finish(result, None)

    def fail(self, exception: BaseException) -> None:
        """Complete the future with an exception."""
        self._finish(None, exception)

    def _finish(self, result: Any, exception: Optional[BaseException]) -> None:
        if self._done:
            raise SimulationError(f"future {self.name or id(self)} completed twice")
        self._done = True
        self._result = result
        self._exception = exception
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def add_done_callback(self, callback: Callable[["Future"], None]) -> None:
        """Register *callback*; it runs immediately if the future is already done."""
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._done else "pending"
        return f"<Future {self.name or hex(id(self))} {state}>"


def all_of(sim: "Simulator", futures: Iterable[Future]) -> Future:
    """Return a future that completes when every future in *futures* is done.

    The result is the list of individual results in input order; the first
    failure fails the combined future.
    """
    futures = list(futures)
    combined = Future(sim, name="all_of")
    if not futures:
        combined.succeed([])
        return combined
    remaining = {"count": len(futures)}

    def on_done(_future: Future) -> None:
        if combined.done:
            return
        if _future.exception is not None:
            combined.fail(_future.exception)
            return
        remaining["count"] -= 1
        if remaining["count"] == 0:
            combined.succeed([future._result for future in futures])

    for future in futures:
        future.add_done_callback(on_done)
    return combined


class ScheduledCall:
    """Handle for one scheduled callback; :meth:`cancel` prevents it running.

    Cancellation is cheap and idempotent: the entry stays in the time-ordered
    queue but is skipped (without counting as an executed event) when its
    time comes.  Both runtimes return these from ``schedule``/``schedule_at``.
    """

    __slots__ = ("time", "callback", "args", "cancelled")

    def __init__(self, time: float, callback: Callable, args: tuple) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if it already ran)."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else f"at t={self.time}"
        return f"<ScheduledCall {getattr(self.callback, '__name__', self.callback)} {state}>"


class SimulatedLane:
    """A serialisation point (a CPU or a wire direction) on the simulated clock.

    A lane models one resource that handles work strictly one item at a time:
    a controller shard's CPU, or one direction of a control channel.  On the
    simulator this is plain tick arithmetic over a ``free_at`` watermark —
    exactly the pattern the seed embedded in :class:`ControllerShard` and
    :class:`ControlChannel` — so routing those components through lanes keeps
    the simulated schedule bit-for-bit identical.  On the
    :class:`~repro.runtime.RealtimeRuntime` each lane is backed by its own
    asyncio task, which is what turns "per-shard simulated CPU" into real
    concurrency.
    """

    __slots__ = ("sim", "name", "_free_at")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._free_at = 0.0

    def reserve(self, cost: float) -> float:
        """Claim *cost* seconds of this lane's serialised time; returns the finish time."""
        start = max(self.sim.now, self._free_at)
        finish = start + cost
        self._free_at = finish
        return finish

    def submit(self, cost: float, work: Callable[[], None]) -> float:
        """Run *work* after *cost* seconds of this lane's serialised time."""
        finish = self.reserve(cost)
        self.sim.schedule_at(finish, work)
        return finish

    def dispatch_at(self, time: float, callback: Callable, *args: Any) -> None:
        """Deliver ``callback(*args)`` at absolute *time*, in time order.

        Equal times preserve dispatch order (FIFO tie-breaking) — on the
        simulator this is simply :meth:`Simulator.schedule_at`.
        """
        self.sim.schedule_at(time, callback, *args)

    @property
    def idle_at(self) -> float:
        """Earliest time at which this lane's queue is (projected to be) empty."""
        return max(self.sim.now, self._free_at)

    @property
    def pending(self) -> int:
        """Work items queued but not yet executed (always 0 here: the
        simulator's lane schedules straight onto the global event queue)."""
        return 0


class _Process:
    """Driver for a generator-based simulation process.

    The generator may yield:

    * a ``float``/``int`` — sleep for that many simulated seconds;
    * a :class:`Future` — wait for it; the future's result is sent back in;
    * a list/tuple of futures — wait for all of them;
    * ``None`` — continue on the next scheduling round (yield to other events).
    """

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        self.sim = sim
        self.generator = generator
        self.future = Future(sim, name=name or getattr(generator, "__name__", "process"))
        sim.schedule(0.0, self._step, None, None)

    def _step(self, value: Any, exception: Optional[BaseException]) -> None:
        try:
            if exception is not None:
                yielded = self.generator.throw(exception)
            else:
                yielded = self.generator.send(value)
        except StopIteration as stop:
            self.future.succeed(stop.value)
            return
        except BaseException as exc:  # propagate process failure to waiters
            self.future.fail(exc)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if yielded is None:
            self.sim.schedule(0.0, self._step, None, None)
        elif isinstance(yielded, (int, float)):
            self.sim.schedule(float(yielded), self._step, None, None)
        elif isinstance(yielded, Future):
            yielded.add_done_callback(self._on_future)
        elif isinstance(yielded, (list, tuple)):
            all_of(self.sim, yielded).add_done_callback(self._on_future)
        else:
            self._step(None, SimulationError(f"process yielded unsupported value {yielded!r}"))

    def _on_future(self, future: Future) -> None:
        # Resume on the simulator queue so process steps never nest inside the
        # completion of another component's callback.
        if future.exception is not None:
            self.sim.schedule(0.0, self._step, None, future.exception)
        else:
            self.sim.schedule(0.0, self._step, future._result, None)


class Simulator:
    """A deterministic discrete-event simulator."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, ScheduledCall]] = []
        self._sequence = itertools.count()
        #: Number of callbacks executed so far (useful for determinism checks).
        self.executed_events = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling ------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable, *args: Any) -> ScheduledCall:
        """Run ``callback(*args)`` *delay* simulated seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable, *args: Any) -> ScheduledCall:
        """Run ``callback(*args)`` at absolute simulated *time*.

        Returns a :class:`ScheduledCall` whose :meth:`~ScheduledCall.cancel`
        prevents the callback from running.
        """
        if time < self._now:
            raise SimulationError(f"cannot schedule into the past (time={time}, now={self._now})")
        entry = ScheduledCall(time, callback, args)
        heapq.heappush(self._queue, (time, next(self._sequence), entry))
        return entry

    def lane(self, name: str = "") -> SimulatedLane:
        """A new serialisation lane (CPU / wire direction) on this clock."""
        return SimulatedLane(self, name=name)

    def event(self, name: str = "") -> Future:
        """Create a pending future bound to this simulator."""
        return Future(self, name=name)

    def timeout(self, delay: float, result: Any = None) -> Future:
        """Return a future that completes after *delay* simulated seconds."""
        future = Future(self, name=f"timeout({delay})")
        self.schedule(delay, future.succeed, result)
        return future

    def process(self, generator: Generator, name: str = "") -> Future:
        """Spawn a generator-based process; returns a future for its return value."""
        return _Process(self, generator, name=name).future

    # -- execution -------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Process events in time order.

        With ``until`` set, execution stops once the next event would occur
        after that time (the clock is advanced to ``until``).  Without it, the
        simulator runs until the event queue is empty.  Returns the final
        simulated time.
        """
        while self._queue:
            time, _, entry = self._queue[0]
            if until is not None and time > until:
                self._now = max(self._now, until)
                return self._now
            heapq.heappop(self._queue)
            if entry.cancelled:
                continue
            self._now = time
            self.executed_events += 1
            entry.callback(*entry.args)
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_until(self, future: Future, limit: float = 1e9) -> Any:
        """Run until *future* completes (or *limit* simulated seconds elapse).

        Returns the future's result; raises if the future failed.  A run that
        cannot complete the future raises :class:`StuckFutureError` describing
        the wedge — the stuck future's name, how many done-callbacks were
        still waiting on it, and the event-queue depth — distinguishing an
        early queue drain (nothing left that could ever complete it) from a
        blown time *limit*.
        """
        while self._queue and not future.done:
            time, _, entry = self._queue[0]
            if time > limit:
                raise self._stuck(future, reason="limit-exceeded", limit=limit)
            heapq.heappop(self._queue)
            if entry.cancelled:
                continue
            self._now = time
            self.executed_events += 1
            entry.callback(*entry.args)
        if not future.done:
            raise self._stuck(future, reason="queue-drained")
        return future.result

    def _stuck(self, future: Future, *, reason: str, limit: Optional[float] = None) -> StuckFutureError:
        """Build the diagnostic error for a future ``run_until`` cannot finish."""
        name = future.name or f"0x{id(future):x}"
        waiters = len(future._callbacks)
        depth = self.pending_events
        if reason == "limit-exceeded":
            detail = f"next event is past the limit t={limit}"
        else:
            detail = "the event queue drained"
        return StuckFutureError(
            f"future {name!r} stuck at t={self._now:.6f}: {detail} "
            f"(pending waiters={waiters}, queue depth={depth})",
            future_name=name,
            reason=reason,
            waiters=waiters,
            queue_depth=depth,
            at=self._now,
            limit=limit,
        )

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
