"""Discrete-event simulation kernel.

Every component of the reproduction — switches, links, middleboxes, the MB
controller, control applications, traffic replay — runs on a single simulated
clock provided by :class:`Simulator`.  The kernel supplies:

* time-ordered callback scheduling (:meth:`Simulator.schedule`);
* :class:`Future` — a one-shot completion token with callbacks, used for
  operation handles returned by the northbound API;
* generator-based processes (:meth:`Simulator.process`) so control
  applications can be written as straight-line sequences of steps that
  ``yield`` the futures or delays they wait on.

The simulated clock is what makes the paper's race conditions reproducible:
packets in flight when a routing update lands, re-process events racing puts,
and quiescence timers all happen at explicit simulated times.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from ..core.errors import SimulationError


class Future:
    """A one-shot completion token tied to a simulator.

    A future is *pending* until :meth:`succeed` or :meth:`fail` is called
    exactly once; callbacks registered with :meth:`add_done_callback` run at
    the simulated time of completion.
    """

    __slots__ = ("sim", "_done", "_result", "_exception", "_callbacks", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._done = False
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["Future"], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    @property
    def result(self) -> Any:
        """Result of the future; raises the stored exception for failed futures."""
        if not self._done:
            raise SimulationError(f"future {self.name or id(self)} is not complete")
        if self._exception is not None:
            raise self._exception
        return self._result

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    def succeed(self, result: Any = None) -> None:
        """Complete the future successfully."""
        self._finish(result, None)

    def fail(self, exception: BaseException) -> None:
        """Complete the future with an exception."""
        self._finish(None, exception)

    def _finish(self, result: Any, exception: Optional[BaseException]) -> None:
        if self._done:
            raise SimulationError(f"future {self.name or id(self)} completed twice")
        self._done = True
        self._result = result
        self._exception = exception
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def add_done_callback(self, callback: Callable[["Future"], None]) -> None:
        """Register *callback*; it runs immediately if the future is already done."""
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._done else "pending"
        return f"<Future {self.name or hex(id(self))} {state}>"


def all_of(sim: "Simulator", futures: Iterable[Future]) -> Future:
    """Return a future that completes when every future in *futures* is done.

    The result is the list of individual results in input order; the first
    failure fails the combined future.
    """
    futures = list(futures)
    combined = Future(sim, name="all_of")
    if not futures:
        combined.succeed([])
        return combined
    remaining = {"count": len(futures)}

    def on_done(_future: Future) -> None:
        if combined.done:
            return
        if _future.exception is not None:
            combined.fail(_future.exception)
            return
        remaining["count"] -= 1
        if remaining["count"] == 0:
            combined.succeed([future._result for future in futures])

    for future in futures:
        future.add_done_callback(on_done)
    return combined


class _Process:
    """Driver for a generator-based simulation process.

    The generator may yield:

    * a ``float``/``int`` — sleep for that many simulated seconds;
    * a :class:`Future` — wait for it; the future's result is sent back in;
    * a list/tuple of futures — wait for all of them;
    * ``None`` — continue on the next scheduling round (yield to other events).
    """

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        self.sim = sim
        self.generator = generator
        self.future = Future(sim, name=name or getattr(generator, "__name__", "process"))
        sim.schedule(0.0, self._step, None, None)

    def _step(self, value: Any, exception: Optional[BaseException]) -> None:
        try:
            if exception is not None:
                yielded = self.generator.throw(exception)
            else:
                yielded = self.generator.send(value)
        except StopIteration as stop:
            self.future.succeed(stop.value)
            return
        except BaseException as exc:  # propagate process failure to waiters
            self.future.fail(exc)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if yielded is None:
            self.sim.schedule(0.0, self._step, None, None)
        elif isinstance(yielded, (int, float)):
            self.sim.schedule(float(yielded), self._step, None, None)
        elif isinstance(yielded, Future):
            yielded.add_done_callback(self._on_future)
        elif isinstance(yielded, (list, tuple)):
            all_of(self.sim, yielded).add_done_callback(self._on_future)
        else:
            self._step(None, SimulationError(f"process yielded unsupported value {yielded!r}"))

    def _on_future(self, future: Future) -> None:
        # Resume on the simulator queue so process steps never nest inside the
        # completion of another component's callback.
        if future.exception is not None:
            self.sim.schedule(0.0, self._step, None, future.exception)
        else:
            self.sim.schedule(0.0, self._step, future._result, None)


class Simulator:
    """A deterministic discrete-event simulator."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, Callable, tuple]] = []
        self._sequence = itertools.count()
        #: Number of callbacks executed so far (useful for determinism checks).
        self.executed_events = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling ------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` *delay* simulated seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` at absolute simulated *time*."""
        if time < self._now:
            raise SimulationError(f"cannot schedule into the past (time={time}, now={self._now})")
        heapq.heappush(self._queue, (time, next(self._sequence), callback, args))

    def event(self, name: str = "") -> Future:
        """Create a pending future bound to this simulator."""
        return Future(self, name=name)

    def timeout(self, delay: float, result: Any = None) -> Future:
        """Return a future that completes after *delay* simulated seconds."""
        future = Future(self, name=f"timeout({delay})")
        self.schedule(delay, future.succeed, result)
        return future

    def process(self, generator: Generator, name: str = "") -> Future:
        """Spawn a generator-based process; returns a future for its return value."""
        return _Process(self, generator, name=name).future

    # -- execution -------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Process events in time order.

        With ``until`` set, execution stops once the next event would occur
        after that time (the clock is advanced to ``until``).  Without it, the
        simulator runs until the event queue is empty.  Returns the final
        simulated time.
        """
        while self._queue:
            time, _, callback, args = self._queue[0]
            if until is not None and time > until:
                self._now = max(self._now, until)
                return self._now
            heapq.heappop(self._queue)
            self._now = time
            self.executed_events += 1
            callback(*args)
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_until(self, future: Future, limit: float = 1e9) -> Any:
        """Run until *future* completes (or *limit* simulated seconds elapse).

        Returns the future's result; raises if the future failed or never
        completed within the limit.
        """
        while self._queue and not future.done:
            time, _, callback, args = heapq.heappop(self._queue)
            if time > limit:
                raise SimulationError(f"future did not complete before t={limit}")
            self._now = time
            self.executed_events += 1
            callback(*args)
        if not future.done:
            raise SimulationError("event queue drained before the future completed")
        return future.result

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
