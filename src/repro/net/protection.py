"""LinkGuardian-style link-local loss recovery between adjacent nodes.

Corruption loss — frames that die to a failing cable or transceiver rather
than to congestion — is invisible to the transport until an end-to-end
timeout fires, so even a 10⁻³ loss rate inflates flow-completion times far
out of proportion.  LinkGuardian (SIGCOMM'23) masks that loss *at the link*:
the two switches adjacent to a lossy link run a small protocol that detects
a lost frame by sequence gap and re-sends it from a local hold buffer at
sub-RTT timescales, so the transport above never sees the loss.

:class:`LinkProtection` implements that protocol for one
:class:`~repro.net.links.Link` (both directions independently):

* the **sender half** stamps every data frame with a per-direction sequence
  number, keeps a copy in a bounded hold buffer (new frames queue in a
  backlog while the buffer is full — the protocol pauses the sender rather
  than forgetting what it may need to re-send), and re-sends on NACK or on a
  sub-RTT retransmission timer;
* the **receiver half** detects loss by sequence gap, NACKs exactly the
  missing sequence numbers (rate-limited per sequence), acknowledges
  cumulatively-plus-selectively so the sender's holds drain, and discards
  duplicates;
* with ``strict_order=True`` the receiver holds out-of-order arrivals in a
  resequencing buffer and delivers strictly in sequence — loss *and*
  reordering are masked, at the cost of gap-fill latency; with
  ``strict_order=False`` frames are delivered the moment they arrive —
  minimal added latency, but a repaired loss is delivered late (out of
  order), which is exactly the stressor order-preserving transfers need.

Control frames (ACK/NACK) travel over the same physical wire in the reverse
direction and are themselves subject to the link's fault plan; the
retransmission timer covers every control-loss case.  All protocol state is
driven by the link's runtime, so the same code runs on the deterministic
simulator and the wall-clock realtime runtime.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checking only
    from .links import Link
    from .topology import Node

#: Annotation key carrying the per-direction protection sequence number.
SEQ_KEY = "lg.seq"

#: Annotation key marking (and carrying) a protection control frame.
CTRL_KEY = "lg.ctrl"

#: Retransmit timeout as a multiple of the one-way link latency.  A link RTT
#: is two latencies; eight keeps recovery sub-RTT relative to any end-to-end
#: path of a few hops while riding out serialisation jitter.
DEFAULT_RTO_LATENCY_MULTIPLE = 8.0


@dataclass
class ProtectionConfig:
    """Tuning knobs for one protected link (both directions share them)."""

    #: Deliver strictly in sequence order (resequencing buffer) when True;
    #: deliver immediately on arrival (repaired losses arrive late) when False.
    strict_order: bool = True
    #: Maximum frames the sender half keeps for retransmission; new frames
    #: queue in a backlog while the buffer is full.
    hold_buffer: int = 128
    #: Seconds before an unacknowledged hold is re-sent; None derives
    #: ``DEFAULT_RTO_LATENCY_MULTIPLE`` × the link's one-way latency.
    retransmit_timeout: Optional[float] = None
    #: Retransmissions per frame before the sender gives up (keeps a link
    #: that eats every frame from retrying forever); the abandonment is
    #: counted, never silent.
    max_retries: int = 30


@dataclass
class ProtectionStats:
    """Protocol counters for one direction of a protected link."""

    #: Data frames delivered up to the node (after resequencing/dedup).
    delivered: int = 0
    #: Duplicate arrivals discarded by the receiver half.
    dup_discards: int = 0
    #: Missing sequence numbers NACKed (one count per NACKed seq).
    nacked: int = 0
    #: Frames delivered out of sequence order (strict_order=False only).
    out_of_order: int = 0
    #: Frames that arrived out of order but were resequenced before delivery.
    resequenced: int = 0
    #: Holds abandoned after ``max_retries`` (unmaskable persistent loss).
    abandoned: int = 0


class _Direction:
    """Sender + receiver protocol state for one direction of the link."""

    __slots__ = (
        "next_seq",
        "holds",
        "backlog",
        "timer_armed",
        "expected",
        "pending",
        "seen",
        "nacked_at",
        "stats",
    )

    def __init__(self) -> None:
        # Sender half: next sequence to stamp, seq -> [frame copy, last
        # transmission time, retries], and the pause queue for a full buffer.
        self.next_seq = 1
        self.holds: Dict[int, list] = {}
        self.backlog: Deque[Tuple[Packet, "Node"]] = deque()
        self.timer_armed = False
        # Receiver half: next sequence expected, the strict-order
        # resequencing buffer, the out-of-order-delivered set (loose order),
        # and the NACK rate limiter (seq -> last time it was NACKed).
        self.expected = 1
        self.pending: Dict[int, Tuple[Packet, int]] = {}
        self.seen: set = set()
        self.nacked_at: Dict[int, float] = {}
        self.stats = ProtectionStats()


class LinkProtection:
    """The LinkGuardian protocol instance attached to one link."""

    def __init__(self, link: "Link", config: ProtectionConfig) -> None:
        self.link = link
        self.config = config
        self.sim = link.sim
        self.retransmit_timeout = (
            config.retransmit_timeout
            if config.retransmit_timeout is not None
            else max(DEFAULT_RTO_LATENCY_MULTIPLE * link.latency, 1e-6)
        )
        from .links import A_TO_B, B_TO_A

        self._dirs: Dict[str, _Direction] = {A_TO_B: _Direction(), B_TO_A: _Direction()}

    # -- introspection ----------------------------------------------------------

    def is_ctrl(self, packet: Packet) -> bool:
        """True for the protocol's own ACK/NACK frames."""
        return CTRL_KEY in packet.annotations

    def stats_for(self, direction: str) -> ProtectionStats:
        """Protocol counters of one direction (by links.A_TO_B / B_TO_A label)."""
        return self._dirs[direction].stats

    @property
    def total_retransmits(self) -> int:
        """Frames re-sent across both directions (from the link's counters)."""
        return self.link.stats_a_to_b.retransmits + self.link.stats_b_to_a.retransmits

    def outstanding(self, direction: str) -> int:
        """Held-plus-backlogged frames the sender half still tracks."""
        state = self._dirs[direction]
        return len(state.holds) + len(state.backlog)

    # -- sender half ------------------------------------------------------------

    def send(self, packet: Packet, sender: "Node") -> Optional[float]:
        """Sequence-stamp *packet* and transmit it with retransmission cover.

        Returns the first physical attempt's delivery time (None when the
        attempt was lost on the wire or the frame is waiting in the backlog —
        either way the protocol re-delivers it, so the return value is only
        the optimistic projection an unprotected link would have given).
        """
        direction = self.link.direction_from(sender)
        state = self._dirs[direction]
        packet.annotations[SEQ_KEY] = state.next_seq
        state.next_seq += 1
        if len(state.holds) >= self.config.hold_buffer:
            state.backlog.append((packet, sender))
            return None
        return self._launch(state, direction, packet, sender)

    def _launch(self, state: _Direction, direction: str, packet: Packet, sender: "Node") -> Optional[float]:
        """Hold a copy of *packet* and make its first transmission attempt."""
        state.holds[packet.annotations[SEQ_KEY]] = [packet.copy(), self.sim.now, 0]
        self._arm_timer(direction, sender)
        return self.link.transmit_raw(packet, sender)

    def _drain_backlog(self, state: _Direction, direction: str) -> None:
        """Move paused frames into freed hold slots (in sequence order)."""
        while state.backlog and len(state.holds) < self.config.hold_buffer:
            packet, sender = state.backlog.popleft()
            self._launch(state, direction, packet, sender)

    def _arm_timer(self, direction: str, sender: "Node") -> None:
        """Schedule the direction's retransmit check (one timer at a time)."""
        state = self._dirs[direction]
        if state.timer_armed:
            return
        state.timer_armed = True
        self.sim.schedule(self.retransmit_timeout, self._timer_check, direction, sender)

    def _timer_check(self, direction: str, sender: "Node") -> None:
        """Re-send the oldest unacknowledged hold once it ages past the RTO.

        Only the head is re-sent (acks free holds selectively, so the head is
        the one genuine gap); a frame that exhausts ``max_retries`` is
        abandoned and counted so persistent loss cannot retry forever.
        """
        state = self._dirs[direction]
        state.timer_armed = False
        if not self.link.up:
            self.on_link_down()
            return
        if not state.holds and not state.backlog:
            return
        if state.holds:
            head = min(state.holds)
            entry = state.holds[head]
            if entry[1] <= self.sim.now - self.retransmit_timeout + 1e-12:
                if entry[2] >= self.config.max_retries:
                    del state.holds[head]
                    state.stats.abandoned += 1
                    self._drain_backlog(state, direction)
                else:
                    self._retransmit(state, direction, head, sender)
        self._arm_timer(direction, sender)

    def _retransmit(self, state: _Direction, direction: str, seq: int, sender: "Node") -> None:
        """One retransmission attempt of a held frame."""
        entry = state.holds.get(seq)
        if entry is None:
            return
        entry[1] = self.sim.now
        entry[2] += 1
        self.link.stats_for(direction).retransmits += 1
        self.link.transmit_raw(entry[0].copy(), sender)

    # -- receiver half ----------------------------------------------------------

    def on_arrival(self, packet: Packet, receiver: "Node", in_port: int) -> None:
        """Physical arrival at *receiver*: ack/nack absorption or data delivery."""
        ctrl = packet.annotations.get(CTRL_KEY)
        if ctrl is not None:
            # The control frame acknowledges the data direction *receiver*
            # transmits on (it travelled the reverse wire to get here).
            self._absorb_ctrl(self.link.direction_from(receiver), ctrl, receiver)
            return
        direction = self.link.direction_from(self.link.other_end(receiver))
        state = self._dirs[direction]
        seq = packet.annotations.get(SEQ_KEY)
        if seq is None:
            receiver.receive(packet, in_port)  # pre-protection frame
            return
        if seq < state.expected or seq in state.pending or seq in state.seen:
            state.stats.dup_discards += 1
            self._send_ctrl(state, receiver)
            return
        if self.config.strict_order:
            state.pending[seq] = (packet, in_port)
            if seq != state.expected:
                state.stats.resequenced += 1
            while state.expected in state.pending:
                held, held_port = state.pending.pop(state.expected)
                state.nacked_at.pop(state.expected, None)
                state.expected += 1
                self._deliver(state, held, receiver, held_port)
        else:
            if seq == state.expected:
                state.expected += 1
                while state.expected in state.seen:
                    state.seen.discard(state.expected)
                    state.nacked_at.pop(state.expected, None)
                    state.expected += 1
            else:
                state.seen.add(seq)
                state.stats.out_of_order += 1
            self._deliver(state, packet, receiver, in_port)
        self._send_ctrl(state, receiver)

    def _deliver(self, state: _Direction, packet: Packet, receiver: "Node", in_port: int) -> None:
        """Hand one frame up to the node, stripped of protocol annotations."""
        packet.annotations.pop(SEQ_KEY, None)
        state.stats.delivered += 1
        receiver.receive(packet, in_port)

    def _send_ctrl(self, state: _Direction, receiver: "Node") -> None:
        """Emit one ACK/NACK control frame back toward the data sender.

        ``cum`` acknowledges everything below ``expected``; ``have`` lists
        sequences buffered or already delivered above the gap (so the sender
        frees those holds instead of re-sending them); ``need`` NACKs the
        missing sequences, rate-limited to one NACK per RTO per sequence.
        """
        above = state.pending.keys() | state.seen
        need: List[int] = []
        if above:
            horizon = max(above)
            cutoff = self.sim.now - self.retransmit_timeout
            for missing in range(state.expected, horizon):
                if missing in above:
                    continue
                if state.nacked_at.get(missing, -1.0) > cutoff:
                    continue
                state.nacked_at[missing] = self.sim.now
                need.append(missing)
            state.stats.nacked += len(need)
        ctrl = Packet(
            nw_src="0.0.0.0",
            nw_dst="0.0.0.0",
            nw_proto=0,
            annotations={CTRL_KEY: {"cum": state.expected - 1, "have": sorted(above), "need": need}},
        )
        self.link.transmit_raw(ctrl, receiver)

    # -- sender half, control absorption ----------------------------------------

    def _absorb_ctrl(self, direction: str, ctrl: dict, sender: "Node") -> None:
        """Free acknowledged holds and service NACKs for one data direction."""
        state = self._dirs[direction]
        cum = int(ctrl.get("cum", 0))
        for seq in [seq for seq in state.holds if seq <= cum]:
            del state.holds[seq]
        for seq in ctrl.get("have", ()):
            state.holds.pop(seq, None)
        for seq in ctrl.get("need", ()):
            if seq in state.holds:
                self._retransmit(state, direction, seq, sender)
        self._drain_backlog(state, direction)

    # -- lifecycle ---------------------------------------------------------------

    def on_link_down(self) -> None:
        """The link went administratively down: stop recovering, count losses.

        Held and backlogged frames die with the link (recorded as drops on
        their direction) — retransmission timers must not keep a dead wire's
        event queue alive forever.
        """
        for direction, state in self._dirs.items():
            lost = len(state.holds) + len(state.backlog)
            if lost:
                self.link.stats_for(direction).drops += lost
            state.holds.clear()
            state.backlog.clear()


@dataclass
class ProtectionSummary:
    """Aggregated view of a protected link's loss/recovery accounting."""

    sent: int = 0
    lost_on_wire: int = 0
    retransmits: int = 0
    delivered: int = 0
    abandoned: int = 0
    ctrl_frames: int = 0
    dup_discards: int = 0
    details: Dict[str, ProtectionStats] = field(default_factory=dict)

    @property
    def effective_loss_rate(self) -> float:
        """Loss the layer above still sees: abandoned over offered frames.

        ``sent`` counts physical attempts (retransmissions included), so the
        denominator here is the *offered* load — frames the protocol either
        delivered or gave up on.
        """
        offered = self.delivered + self.abandoned
        return self.abandoned / offered if offered else 0.0

    @property
    def wire_loss_rate(self) -> float:
        """Raw per-attempt loss the wire inflicted (drops + corruption over
        physical data frames sent, retransmissions included)."""
        return self.lost_on_wire / self.sent if self.sent else 0.0


def summarize(link: "Link") -> ProtectionSummary:
    """Build a :class:`ProtectionSummary` from a (protected) link's counters."""
    from .links import A_TO_B, B_TO_A

    summary = ProtectionSummary()
    for direction in (A_TO_B, B_TO_A):
        stats = link.stats_for(direction)
        summary.sent += stats.packets - stats.ctrl_frames
        summary.lost_on_wire += stats.drops + stats.corrupted
        summary.retransmits += stats.retransmits
        summary.ctrl_frames += stats.ctrl_frames
        if link.protection is not None:
            protocol = link.protection.stats_for(direction)
            summary.delivered += protocol.delivered
            summary.abandoned += protocol.abandoned
            summary.dup_discards += protocol.dup_discards
            summary.details[direction] = protocol
    return summary
