"""SDN controller for the network substrate.

The OpenMB control applications coordinate middlebox state operations with
routing changes.  :class:`SDNController` provides the routing half: it
computes paths over the :class:`~repro.net.topology.Topology` graph (optionally
through middlebox waypoints) and installs prioritized flow rules on every
switch along the path.

Rule installation is not instantaneous: each switch applies the rule after a
configurable installation latency, which is exactly what creates the windows
in which packets are still delivered to the *old* middlebox after a control
application has requested a re-route — the races OpenMB's re-process events
are designed to absorb.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.errors import NetworkError
from ..core.flowspace import FlowPattern
from .flowtable import Action, FlowRule
from .packet import Packet
from .simulator import Future, Simulator, all_of
from .switch import Switch
from .topology import Node, Topology

#: Time for a switch to apply a newly pushed flow rule (seconds).
DEFAULT_RULE_INSTALL_LATENCY = 2e-3

_route_ids = itertools.count(1)


@dataclass
class RouteHandle:
    """Bookkeeping for one installed route (one pattern along one path)."""

    route_id: int
    cookie: str
    pattern: FlowPattern
    path: List[str]
    rules: List[FlowRule] = field(default_factory=list)
    installed: Optional[Future] = None


@dataclass
class RouteSwap:
    """Bookkeeping for one atomic multi-pattern route swap.

    ``routes`` are the newly installed routes (one per pattern/path pair) and
    ``replaced`` the routes scheduled for removal once every new rule has been
    applied (make-before-break).  ``rollback()`` undoes the swap: the new
    routes are removed and, if the replaced routes were already torn down,
    they are re-installed.
    """

    controller: "SDNController"
    routes: List[RouteHandle] = field(default_factory=list)
    replaced: List[RouteHandle] = field(default_factory=list)
    installed: Optional[Future] = None
    _replaced_removed: bool = False
    _rolled_back: bool = False

    def rollback(self) -> None:
        """Remove the swap's new routes and restore any replaced ones."""
        if self._rolled_back:
            return
        self._rolled_back = True
        for handle in self.routes:
            self.controller.remove_route(handle)
        if self._replaced_removed:
            for handle in self.replaced:
                restored = self.controller.install_route(
                    handle.pattern, handle.path, priority=handle.rules[0].priority if handle.rules else 100
                )
                handle.route_id = restored.route_id
                handle.cookie = restored.cookie
                handle.rules = restored.rules
                handle.installed = restored.installed


class SDNController:
    """Computes paths and programs switches."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        *,
        rule_install_latency: float = DEFAULT_RULE_INSTALL_LATENCY,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.rule_install_latency = rule_install_latency
        self.routes: Dict[int, RouteHandle] = {}
        self.packet_ins: List[Packet] = []
        self.rules_installed = 0
        self.routing_updates = 0
        #: Programming messages pushed to switches: one per (switch, update),
        #: each possibly carrying several rules (the batched route dispatch —
        #: a multi-pattern swap programs each switch once, not once per rule).
        self.switch_updates = 0
        for node in topology.nodes.values():
            if isinstance(node, Switch):
                node.set_packet_in_handler(self._on_packet_in)

    # -- packet-in handling -------------------------------------------------------

    def adopt_switch(self, switch: Switch) -> None:
        """Register a switch added to the topology after the controller was built."""
        switch.set_packet_in_handler(self._on_packet_in)

    def _on_packet_in(self, switch: Switch, packet: Packet, in_port: int) -> None:
        self.packet_ins.append(packet)

    # -- route installation ----------------------------------------------------------

    def install_route(
        self,
        pattern: FlowPattern,
        path: Sequence[Node | str],
        *,
        priority: int = 100,
        bidirectional: bool = False,
    ) -> RouteHandle:
        """Install forwarding rules for *pattern* along *path*.

        *path* is an ordered list of node names (or nodes) beginning at the
        ingress node and ending at the egress node; rules are installed on the
        switches in between so matching packets follow the path.  Returns a
        handle whose ``installed`` future completes once every switch has
        applied its rule.
        """
        names = [node.name if isinstance(node, Node) else node for node in path]
        route_id = next(_route_ids)
        prepared = self._prepare_rules(pattern, names, priority, f"route-{route_id}")
        handle, pending = self._register_route(route_id, pattern, names, prepared)
        if bidirectional:
            reverse = self.install_route(
                self._reverse_pattern(pattern), list(reversed(names)), priority=priority
            )
            handle.rules.extend(reverse.rules)
            if reverse.installed is not None:
                pending.append(reverse.installed)
        handle.installed = all_of(self.sim, pending)
        return handle

    def _register_prepared(
        self,
        route_id: int,
        pattern: FlowPattern,
        names: List[str],
        prepared: List[tuple],
        by_switch: Dict[Switch, List[FlowRule]],
    ) -> tuple:
        """Register one route and accumulate its rules into *by_switch*.

        The single place route-registration happens: builds the handle,
        records the rules, stores the route, and bumps ``routing_updates``.
        Returns ``(handle, switches)`` where *switches* are the distinct
        switches (in path order) whose pending updates gate the handle's
        ``installed`` future.  The caller decides the batching scope by
        passing a per-route or swap-wide accumulator.
        """
        handle = RouteHandle(route_id=route_id, cookie=f"route-{route_id}", pattern=pattern, path=list(names))
        switches: List[Switch] = []
        for switch, rule in prepared:
            by_switch.setdefault(switch, []).append(rule)
            handle.rules.append(rule)
            if switch not in switches:
                switches.append(switch)
        self.routes[route_id] = handle
        self.routing_updates += 1
        return handle, switches

    def _register_route(
        self, route_id: int, pattern: FlowPattern, names: List[str], prepared: List[tuple]
    ) -> tuple:
        """Push pre-validated (switch, rule) pairs and register one route.

        Rules destined for the same switch are grouped into a single
        programming update.  Returns ``(handle, pending)``; the caller
        combines *pending* into the handle's ``installed`` future (it may add
        more, e.g. a reverse route).
        """
        by_switch: Dict[Switch, List[FlowRule]] = {}
        handle, _ = self._register_prepared(route_id, pattern, names, prepared, by_switch)
        pending: List[Future] = [self._push_rules(switch, rules) for switch, rules in by_switch.items()]
        return handle, pending

    def _prepare_rules(
        self, pattern: FlowPattern, names: List[str], priority: int, cookie: str
    ) -> List[tuple]:
        """Validate *names* and build the (switch, rule) pairs for one route.

        Raises :class:`NetworkError` without touching any switch when the path
        is malformed — the validation half of an atomic swap.
        """
        if len(names) < 2:
            raise NetworkError("a route needs at least two nodes")
        prepared: List[tuple] = []
        for previous, current, following in self._hops(names):
            node = self.topology.get(current)
            if not isinstance(node, Switch):
                continue
            out_port = node.port_to(self.topology.get(following)) if following else None
            if out_port is None:
                raise NetworkError(f"{current} has no port toward {following}")
            rule = FlowRule(
                pattern=pattern,
                actions=[Action.output(out_port)],
                priority=priority,
                cookie=cookie,
            )
            prepared.append((node, rule))
        return prepared

    def swap_routes(
        self,
        changes: Sequence[tuple],
        *,
        priority: int = 100,
        replace: Sequence[RouteHandle] = (),
    ) -> RouteSwap:
        """Atomically install routes for several patterns, replacing old ones.

        ``changes`` is a sequence of ``(pattern, path)`` pairs (*path* as in
        :meth:`install_route`).  Atomicity has two halves:

        * **validation first** — every pair is resolved to concrete switch
          rules before any rule is pushed, so a malformed path leaves the
          network untouched;
        * **make-before-break** — the routes in ``replace`` are removed only
          once every new rule has been applied, so no pattern is ever without
          a route during the swap.

        Returns a :class:`RouteSwap` whose ``installed`` future completes when
        every switch applied its rules and whose ``rollback()`` removes the
        new routes (re-installing replaced ones if they were already removed).
        """
        prepared: List[tuple] = []
        for pattern, path in changes:
            names = [node.name if isinstance(node, Node) else node for node in path]
            route_id = next(_route_ids)
            rules = self._prepare_rules(pattern, names, priority, f"route-{route_id}")
            prepared.append((pattern, names, route_id, rules))

        # Batched route dispatch: group every rule of the whole swap by its
        # target switch and program each switch exactly once, so a
        # multi-pattern swap costs O(switches) updates instead of
        # O(patterns x path length).
        swap = RouteSwap(controller=self, replaced=list(replace))
        by_switch: Dict[Switch, List[FlowRule]] = {}
        route_switch_sets: List[tuple] = []
        for pattern, names, route_id, rules in prepared:
            handle, switches = self._register_prepared(route_id, pattern, names, rules, by_switch)
            route_switch_sets.append((handle, switches))
            swap.routes.append(handle)
        update_futures = {switch: self._push_rules(switch, rules) for switch, rules in by_switch.items()}
        for handle, switches in route_switch_sets:
            handle.installed = all_of(self.sim, [update_futures[switch] for switch in switches])
        swap.installed = all_of(self.sim, list(update_futures.values()))

        def break_old(future: Future) -> None:
            if future.exception is not None or swap._rolled_back:
                return
            for old in swap.replaced:
                self.remove_route(old)
            swap._replaced_removed = True

        swap.installed.add_done_callback(break_old)
        return swap

    @staticmethod
    def _hops(names: List[str]):
        """(previous, current, next) triples for every node that must forward."""
        triples = []
        for index, current in enumerate(names[:-1]):
            previous = names[index - 1] if index > 0 else None
            following = names[index + 1]
            triples.append((previous, current, following))
        return triples

    def _push_rules(self, switch: Switch, rules: List[FlowRule]) -> Future:
        """Program *switch* with *rules* in one update message.

        All rules of the update take effect together after the install
        latency; the returned future completes at that point.  Batching rules
        per switch is what keeps a multi-pattern route swap at one
        programming round-trip per switch.
        """
        future = self.sim.event(name=f"install@{switch.name}")
        self.switch_updates += 1

        def apply_rules() -> None:
            for rule in rules:
                switch.install_rule(rule)
            self.rules_installed += len(rules)
            future.succeed(rules)

        self.sim.schedule(self.rule_install_latency, apply_rules)
        return future

    def remove_route(self, handle: RouteHandle) -> None:
        """Remove every rule installed for *handle* (takes effect after install latency)."""

        def remove() -> None:
            for node in handle.path:
                topo_node = self.topology.get(node)
                if isinstance(topo_node, Switch):
                    topo_node.remove_rules_by_cookie(handle.cookie)

        self.sim.schedule(self.rule_install_latency, remove)
        self.routes.pop(handle.route_id, None)

    # -- higher-level routing used by control applications -----------------------------

    def route(
        self,
        pattern: FlowPattern,
        ingress: Node | str,
        egress: Node | str,
        waypoints: Sequence[Node | str] = (),
        *,
        priority: int = 100,
        bidirectional: bool = False,
    ) -> RouteHandle:
        """Route flows matching *pattern* from *ingress* to *egress* via *waypoints*.

        This is the ``route(k, r)`` call of the paper's Figure 4: the control
        application names the flows (the pattern) and the new route (here, the
        middlebox waypoints), and the SDN controller programs the switches.
        """
        path = self.topology.path_through(ingress, list(waypoints), egress)
        return self.install_route(pattern, path, priority=priority, bidirectional=bidirectional)

    @staticmethod
    def _reverse_pattern(pattern: FlowPattern) -> FlowPattern:
        fields = pattern.as_dict()
        return FlowPattern(
            nw_proto=fields.get("nw_proto"),
            nw_src=fields.get("nw_dst"),
            nw_dst=fields.get("nw_src"),
            tp_src=fields.get("tp_dst"),
            tp_dst=fields.get("tp_src"),
        )
