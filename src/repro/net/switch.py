"""OpenFlow-style switch.

A switch forwards packets according to its :class:`~repro.net.flowtable.FlowTable`.
Misses go to the registered packet-in handler (the SDN controller) or are
dropped.  The switch also implements packet buffering for patterns the
Split/Merge baseline suspends, and keeps counters used by the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..core.errors import NetworkError
from ..core.flowspace import FlowPattern
from .flowtable import Action, ActionType, FlowRule, FlowTable
from .packet import Packet
from .simulator import Simulator
from .topology import Node

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .protection import LinkProtection, ProtectionConfig

#: Per-packet forwarding latency through the switch fabric (seconds).
DEFAULT_FORWARD_LATENCY = 5e-6


@dataclass
class SwitchStats:
    """Aggregate counters for one switch."""

    packets_in: int = 0
    packets_forwarded: int = 0
    packets_dropped: int = 0
    packets_to_controller: int = 0
    packets_buffered: int = 0
    bytes_forwarded: int = 0
    table_misses: int = 0


@dataclass
class _BufferedPacket:
    packet: Packet
    in_port: int
    buffered_at: float


class Switch(Node):
    """A programmable switch with a single flow table."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        forward_latency: float = DEFAULT_FORWARD_LATENCY,
        default_action: Action = Action.drop(),
    ) -> None:
        super().__init__(sim, name)
        self.table = FlowTable()
        self.forward_latency = forward_latency
        self.default_action = default_action
        self.stats = SwitchStats()
        self._packet_in_handler: Optional[Callable[["Switch", Packet, int], None]] = None
        self._buffers: Dict[FlowPattern, List[_BufferedPacket]] = {}

    # -- control-plane interface -------------------------------------------------

    def set_packet_in_handler(self, handler: Callable[["Switch", Packet, int], None]) -> None:
        """Register the handler invoked for CONTROLLER actions and table misses."""
        self._packet_in_handler = handler

    def install_rule(self, rule: FlowRule) -> FlowRule:
        """Install a flow rule immediately (the SDN controller adds install latency)."""
        rule.installed_at = self.sim.now
        return self.table.add(rule)

    def remove_rules_by_cookie(self, cookie: str) -> int:
        return self.table.remove_by_cookie(cookie)

    def remove_rule(self, rule: FlowRule) -> bool:
        return self.table.remove(rule)

    # -- buffering (used by the Split/Merge baseline) -----------------------------

    def buffer_pattern(self, pattern: FlowPattern) -> None:
        """Start buffering packets that match *pattern* instead of forwarding them."""
        self._buffers.setdefault(pattern, [])

    def release_pattern(self, pattern: FlowPattern) -> List[Tuple[Packet, float]]:
        """Stop buffering *pattern* and re-inject held packets through the pipeline.

        Released packets take the same path as a fresh arrival: they are
        re-checked against the patterns still buffering (a packet matching an
        overlapping suspended pattern is re-buffered, preserving Split/Merge
        suspend semantics) and otherwise pay the ``forward_latency`` hop
        before the table lookup — release is not a free shortcut through the
        fabric.

        Returns ``(packet, buffered_duration)`` pairs so callers can account
        for the extra latency the buffering introduced.
        """
        held = self._buffers.pop(pattern, [])
        released: List[Tuple[Packet, float]] = []
        for entry in held:
            duration = self.sim.now - entry.buffered_at
            released.append((entry.packet, duration))
            if self._buffer_if_matched(entry.packet, entry.in_port):
                continue
            self.sim.schedule(self.forward_latency, self._apply_pipeline, entry.packet, entry.in_port)
        return released

    def buffered_count(self, pattern: Optional[FlowPattern] = None) -> int:
        """Number of packets currently buffered (for one pattern or in total)."""
        if pattern is not None:
            return len(self._buffers.get(pattern, []))
        return sum(len(held) for held in self._buffers.values())

    # -- link-local protection (LinkGuardian) -------------------------------------

    def protect_port(self, port: int, config: Optional["ProtectionConfig"] = None) -> "LinkProtection":
        """Enable LinkGuardian-style loss recovery on the link behind *port*."""
        link = self.ports.get(port)
        if link is None:
            raise NetworkError(f"{self.name} has no link on port {port}")
        return link.enable_protection(config)

    # -- data plane ----------------------------------------------------------------

    def _buffer_if_matched(self, packet: Packet, in_port: int) -> bool:
        """Buffer *packet* under the first matching suspended pattern.

        First match wins, in pattern-insertion order — the contract
        Split/Merge relies on when overlapping patterns are suspended.
        """
        for pattern, held in self._buffers.items():
            if pattern.matches(packet.flow_key()):
                held.append(_BufferedPacket(packet, in_port, self.sim.now))
                self.stats.packets_buffered += 1
                return True
        return False

    def receive(self, packet: Packet, in_port: int) -> None:
        self.stats.packets_in += 1
        if self._buffer_if_matched(packet, in_port):
            return
        self.sim.schedule(self.forward_latency, self._apply_pipeline, packet, in_port)

    def _apply_pipeline(self, packet: Packet, in_port: int) -> None:
        rule = self.table.lookup(packet)
        if rule is None:
            self.stats.table_misses += 1
            self._apply_actions(packet, in_port, [self.default_action])
            return
        rule.record(packet)
        self._apply_actions(packet, in_port, rule.actions)

    def _apply_actions(self, packet: Packet, in_port: int, actions: List[Action]) -> None:
        for action in actions:
            if action.type is ActionType.OUTPUT:
                if action.port == in_port:
                    # never reflect a packet back out of the port it arrived on
                    self.stats.packets_dropped += 1
                    continue
                self.stats.packets_forwarded += 1
                self.stats.bytes_forwarded += packet.wire_size
                self.send_out(action.port, packet)
            elif action.type is ActionType.DROP:
                self.stats.packets_dropped += 1
            elif action.type is ActionType.CONTROLLER:
                self.stats.packets_to_controller += 1
                if self._packet_in_handler is not None:
                    self._packet_in_handler(self, packet, in_port)
            elif action.type is ActionType.BUFFER:
                self._buffers.setdefault(FlowPattern.from_flow(packet.flow_key()), []).append(
                    _BufferedPacket(packet, in_port, self.sim.now)
                )
                self.stats.packets_buffered += 1
