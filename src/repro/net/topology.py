"""Topology: nodes, hosts, and the graph the SDN controller computes paths on.

A :class:`Topology` owns every node and link in a simulated network and keeps
a parallel :mod:`networkx` graph for path computation.  Node types:

* :class:`Node` — abstract base: named, owns numbered ports, receives packets.
* :class:`Host` — an end host with an IP address; generates and sinks traffic.
* switches live in :mod:`repro.net.switch`; middleboxes subclass
  :class:`Node` via :class:`repro.middleboxes.base.Middlebox`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import networkx as nx

from ..core.errors import NetworkError
from .links import DEFAULT_BANDWIDTH, DEFAULT_LATENCY, Link, LinkFaultPlan
from .packet import Packet
from .simulator import Simulator


class Node:
    """Base class for anything attached to the simulated network."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.ports: Dict[int, Link] = {}

    # -- port management --------------------------------------------------------

    def next_free_port(self) -> int:
        """The lowest unused port number on this node."""
        port = 1
        while port in self.ports:
            port += 1
        return port

    def attach_link(self, port: int, link: Link) -> None:
        if port in self.ports:
            raise NetworkError(f"port {port} on {self.name} is already in use")
        self.ports[port] = link

    def port_to(self, neighbor: "Node") -> Optional[int]:
        """The port number facing *neighbor*, or None when not directly connected."""
        for port, link in self.ports.items():
            if link.other_end(self) is neighbor:
                return port
        return None

    def send_out(self, port: int, packet: Packet) -> None:
        """Transmit *packet* out of *port*."""
        link = self.ports.get(port)
        if link is None:
            raise NetworkError(f"{self.name} has no link on port {port}")
        link.transmit(packet, self)

    # -- packet handling ---------------------------------------------------------

    def receive(self, packet: Packet, in_port: int) -> None:
        """Handle a packet arriving on *in_port*; subclasses override."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class Host(Node):
    """An end host: a traffic source and sink with one or more links."""

    def __init__(self, sim: Simulator, name: str, ip: str) -> None:
        super().__init__(sim, name)
        self.ip = ip
        self.received: List[Packet] = []
        self.received_bytes = 0
        self.sent_packets = 0
        self._receive_callbacks: List[Callable[[Packet], None]] = []

    def on_receive(self, callback: Callable[[Packet], None]) -> None:
        """Register a callback invoked for every packet delivered to this host."""
        self._receive_callbacks.append(callback)

    def receive(self, packet: Packet, in_port: int) -> None:
        self.received.append(packet)
        self.received_bytes += packet.wire_size
        for callback in self._receive_callbacks:
            callback(packet)

    def send(self, packet: Packet, port: Optional[int] = None) -> None:
        """Inject *packet* into the network out of the given (or only) port."""
        if port is None:
            if len(self.ports) != 1:
                raise NetworkError(f"{self.name} has {len(self.ports)} ports; specify one")
            port = next(iter(self.ports))
        packet.created_at = self.sim.now
        self.sent_packets += 1
        self.send_out(port, packet)


class Topology:
    """A container for nodes and links plus the routing graph."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.nodes: Dict[str, Node] = {}
        self.links: List[Link] = []
        self.graph = nx.Graph()

    # -- construction ------------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        """Register an already constructed node (switch, host, or middlebox)."""
        if node.name in self.nodes:
            raise NetworkError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        self.graph.add_node(node.name)
        return node

    def add_host(self, name: str, ip: str) -> Host:
        """Create and register a host."""
        host = Host(self.sim, name, ip)
        self.add_node(host)
        return host

    def connect(
        self,
        node_a: Node | str,
        node_b: Node | str,
        *,
        latency: float = DEFAULT_LATENCY,
        bandwidth: float = DEFAULT_BANDWIDTH,
        faults: Optional["LinkFaultPlan"] = None,
    ) -> Link:
        """Create a link between two registered nodes, auto-assigning ports.

        Pass ``faults`` (a :class:`~repro.net.links.LinkFaultPlan`) to give
        the link seeded loss/corruption/reordering processes.
        """
        node_a = self._resolve(node_a)
        node_b = self._resolve(node_b)
        port_a = node_a.next_free_port()
        port_b = node_b.next_free_port()
        link = Link(
            self.sim, node_a, port_a, node_b, port_b, latency=latency, bandwidth=bandwidth, faults=faults
        )
        node_a.attach_link(port_a, link)
        node_b.attach_link(port_b, link)
        self.links.append(link)
        self.graph.add_edge(node_a.name, node_b.name, weight=latency, link=link)
        return link

    # -- queries -----------------------------------------------------------------

    def _resolve(self, node: Node | str) -> Node:
        if isinstance(node, Node):
            registered = self.nodes.get(node.name)
            if registered is None:
                raise NetworkError(f"node {node.name!r} is not registered in the topology")
            if registered is not node:
                # A different object wearing a registered node's name must not
                # be attached: the two would silently alias each other in every
                # name-keyed structure (routing graph, link serialization).
                raise NetworkError(
                    f"node object is not the registered {node.name!r} (duplicate-name attachment)"
                )
            return node
        try:
            return self.nodes[node]
        except KeyError:
            raise NetworkError(f"unknown node {node!r}") from None

    def get(self, name: str) -> Node:
        """Return a node by name."""
        return self._resolve(name)

    def hosts(self) -> List[Host]:
        return [node for node in self.nodes.values() if isinstance(node, Host)]

    def host_by_ip(self, ip: str) -> Host:
        """Find the host owning an IP address."""
        for host in self.hosts():
            if host.ip == ip:
                return host
        raise NetworkError(f"no host with IP {ip}")

    def shortest_path(self, source: Node | str, target: Node | str) -> List[str]:
        """Latency-weighted shortest path between two nodes (names)."""
        source = self._resolve(source).name
        target = self._resolve(target).name
        try:
            return nx.shortest_path(self.graph, source, target, weight="weight")
        except nx.NetworkXNoPath:
            raise NetworkError(f"no path between {source} and {target}") from None

    def path_through(self, source: Node | str, waypoints: List[Node | str], target: Node | str) -> List[str]:
        """A path from *source* to *target* that visits *waypoints* in order."""
        stops = [source, *waypoints, target]
        full_path: List[str] = []
        for leg_start, leg_end in zip(stops, stops[1:]):
            leg = self.shortest_path(leg_start, leg_end)
            if full_path:
                leg = leg[1:]
            full_path.extend(leg)
        return full_path

    def link_between(self, node_a: Node | str, node_b: Node | str) -> Link:
        """The link directly connecting two nodes."""
        node_a = self._resolve(node_a)
        node_b = self._resolve(node_b)
        for link in self.links:
            endpoints = {link.node_a, link.node_b}
            if endpoints == {node_a, node_b}:
                return link
        raise NetworkError(f"{node_a.name} and {node_b.name} are not directly connected")

    def __contains__(self, name: str) -> bool:
        return name in self.nodes

    def __len__(self) -> int:
        return len(self.nodes)
