"""Network-level measurement helpers.

The evaluation needs latency and delivery accounting at the network layer:
per-packet end-to-end latency (including queueing), per-pattern delivery
counts, and timelines of when packets were seen where.  :class:`LatencyProbe`
and :class:`DeliveryRecorder` attach to hosts or middleboxes and collect these
without perturbing the traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.flowspace import FlowPattern
from .packet import Packet
from .simulator import Simulator
from .topology import Host


@dataclass
class LatencySample:
    """One observed packet delivery."""

    packet_id: int
    sent_at: float
    received_at: float

    @property
    def latency(self) -> float:
        return self.received_at - self.sent_at


class LatencyProbe:
    """Records end-to-end latency for packets delivered to a host."""

    def __init__(self, sim: Simulator, host: Host, pattern: Optional[FlowPattern] = None) -> None:
        self.sim = sim
        self.pattern = pattern or FlowPattern.wildcard()
        self.samples: List[LatencySample] = []
        host.on_receive(self._record)

    def _record(self, packet: Packet) -> None:
        if not self.pattern.matches(packet.flow_key()):
            return
        self.samples.append(LatencySample(packet.packet_id, packet.created_at, self.sim.now))

    @property
    def count(self) -> int:
        return len(self.samples)

    def mean_latency(self) -> float:
        """Mean observed latency in seconds (0.0 when no samples)."""
        if not self.samples:
            return 0.0
        return sum(sample.latency for sample in self.samples) / len(self.samples)

    def max_latency(self) -> float:
        if not self.samples:
            return 0.0
        return max(sample.latency for sample in self.samples)

    def latencies_between(self, start: float, end: float) -> List[float]:
        """Latencies of packets received within a simulated-time window."""
        return [s.latency for s in self.samples if start <= s.received_at <= end]


class DeliveryRecorder:
    """Counts packets delivered to a host, bucketed by flow pattern."""

    def __init__(self, host: Host, patterns: Dict[str, FlowPattern]) -> None:
        self.patterns = dict(patterns)
        self.counts: Dict[str, int] = {name: 0 for name in patterns}
        self.bytes: Dict[str, int] = {name: 0 for name in patterns}
        self.unmatched = 0
        host.on_receive(self._record)

    def _record(self, packet: Packet) -> None:
        key = packet.flow_key()
        matched = False
        for name, pattern in self.patterns.items():
            if pattern.matches(key):
                self.counts[name] += 1
                self.bytes[name] += packet.wire_size
                matched = True
        if not matched:
            self.unmatched += 1

    def total(self) -> int:
        return sum(self.counts.values()) + self.unmatched
