"""Failure recovery control application (paper section 2, requirement R6).

The failure-recovery strategy the paper advocates keeps a *minimal live
snapshot of only critical state* — learned through introspection events as the
middlebox creates it — and restores just that state into a replacement
instance when the original fails, with non-critical state (timeouts, counters)
restarting at defaults.

:class:`FailureRecoveryApp` implements that for the NAT: it subscribes to
``nat.mapping_created`` events, mirrors the advertised mappings into a shadow
table, and on failure writes the shadow table into the replacement NAT as
static-mapping configuration, then re-routes traffic to the replacement.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional, Tuple

from ..core.events import Event
from ..core.flowspace import FlowKey
from ..core.northbound import NorthboundAPI
from ..middleboxes.nat import EVENT_MAPPING_CREATED
from ..net.sdn import SDNController
from ..net.simulator import Future, Simulator
from .base import ControlApplication


class FailureRecoveryApp(ControlApplication):
    """Keep a live shadow of a NAT's critical state and restore it on failure."""

    name = "failure-recovery"

    def __init__(
        self,
        sim: Simulator,
        northbound: NorthboundAPI,
        *,
        protected_mb: str,
        sdn: Optional[SDNController] = None,
    ) -> None:
        super().__init__(sim, northbound, sdn)
        self.protected_mb = protected_mb
        #: Shadow of critical state: flow key -> (external ip, external port).
        self.shadow: Dict[FlowKey, Tuple[str, int]] = {}
        self.events_seen = 0

    # -- monitoring phase ---------------------------------------------------------------------------

    def arm(self) -> Future:
        """Subscribe to mapping-creation events at the protected middlebox."""
        self.nb.subscribe_events(self._on_event)
        future = self.nb.enable_events(self.protected_mb, EVENT_MAPPING_CREATED)
        self._log(f"armed: listening for {EVENT_MAPPING_CREATED} from {self.protected_mb}")
        return future

    def _on_event(self, event: Event) -> None:
        if event.mb_name != self.protected_mb or event.code != EVENT_MAPPING_CREATED:
            return
        if event.key is None:
            return
        self.events_seen += 1
        external_ip = str(event.values.get("external_ip", ""))
        external_port = int(event.values.get("external_port", 0))
        # The NAT raises the event with the outbound key (internal host as source).
        self.shadow[event.key] = (external_ip, external_port)

    # -- recovery phase ------------------------------------------------------------------------------

    def recover_to(
        self,
        replacement_mb: str,
        *,
        update_routing: Callable[[], Future],
        config_keys_to_copy: Tuple[str, ...] = (
            "NAT.ExternalIP",
            "NAT.PortRangeStart",
            "NAT.PortRangeEnd",
            "NAT.InternalPrefix",
        ),
    ) -> Future:
        """Bootstrap *replacement_mb* from the shadow table and re-route traffic to it."""
        self.replacement_mb = replacement_mb
        self._update_routing = update_routing
        self._config_keys = config_keys_to_copy
        return self.start()

    def steps(self) -> Generator:
        # 1. Copy the protected middlebox's essential configuration.  The failed
        #    instance may be unreachable, so this stays a best-effort read
        #    *outside* the transaction (a failure here must not abort recovery).
        try:
            values = yield self.nb.read_config(self.protected_mb, "*")
        except Exception:
            values = {}
        restorable = {key: vals for key, vals in (values or {}).items() if key in self._config_keys}
        static = [
            f"{key.nw_src}:{key.tp_src}={external_ip}:{external_port}"
            for key, (external_ip, external_port) in sorted(self.shadow.items())
        ]
        # 2+3. Restore configuration and critical state into the replacement
        # and re-route to it — one transaction, so a half-restored replacement
        # never receives live traffic: if any write fails, the routing change
        # is rolled back along with it.
        txn = self.nb.transaction()
        txn.observer = self._log
        if restorable:
            txn.write_config(self.replacement_mb, "*", restorable)
        if static:
            txn.write_config(self.replacement_mb, "NAT.StaticMappings", static)
        txn.reroute(apply=self._update_routing, label=f"reroute({self.replacement_mb})")
        handle = txn.commit()
        yield handle.done
        if restorable:
            self._log(f"restored {len(restorable)} configuration keys")
        if static:
            self._log(f"restored {len(static)} critical mappings into {self.replacement_mb}")
        self._log("routing updated to the replacement instance")
        self.report.details["transaction"] = handle.aggregate()
        self.report.details["mappings_restored"] = len(static)
        self.report.details["events_seen"] = self.events_seen
        return self.report
