"""Failure recovery control application (paper section 2, requirement R6).

The failure-recovery strategy the paper advocates keeps a *minimal live
snapshot of only critical state* — learned through introspection events as the
middlebox creates it — and restores just that state into a replacement
instance when the original fails, with non-critical state (timeouts, counters)
restarting at defaults.

:class:`FailureRecoveryApp` implements that for the NAT, in two generations:

* **Legacy restore-at-failure** (the seed behaviour, still available): the app
  only shadows mappings while the primary is alive; at failure time it
  best-effort reads the (possibly unreachable) primary's configuration and
  writes configuration plus the whole shadow into the replacement before
  re-routing.  All restoration work lands inside the recovery window.
* **Pre-cloned standby** (``standby_mb=...``): at arm time the app clones the
  primary's configuration to a named standby and then *continuously* syncs
  the shadow into the standby as mappings are created (coalesced writes, so a
  burst of events costs one configuration write).  When the primary dies —
  detected via the controller's liveness machinery
  (``openmb.instance_down``) or reported explicitly — recovery replays only
  the mappings the background sync had not yet flushed (the **loss-free
  replay** of the unsynced delta) and flips routing; in the steady state that
  makes failover a pure routing change.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional, Tuple

from ..core.events import Event, EventCode
from ..core.flowspace import FlowKey
from ..core.northbound import NorthboundAPI
from ..middleboxes.nat import EVENT_MAPPING_CREATED
from ..net.sdn import SDNController
from ..net.simulator import Future, Simulator, all_of
from .base import ControlApplication

#: Configuration keys a NAT replacement needs to serve existing mappings.
DEFAULT_CONFIG_KEYS: Tuple[str, ...] = (
    "NAT.ExternalIP",
    "NAT.PortRangeStart",
    "NAT.PortRangeEnd",
    "NAT.InternalPrefix",
)


class FailureRecoveryApp(ControlApplication):
    """Keep a live shadow of a NAT's critical state and restore it on failure."""

    name = "failure-recovery"

    def __init__(
        self,
        sim: Simulator,
        northbound: NorthboundAPI,
        *,
        protected_mb: str,
        standby_mb: Optional[str] = None,
        sdn: Optional[SDNController] = None,
        sync_delay: float = 1e-3,
    ) -> None:
        super().__init__(sim, northbound, sdn)
        self.protected_mb = protected_mb
        self.standby_mb = standby_mb
        #: Shadow of critical state: flow key -> (external ip, external port).
        self.shadow: Dict[FlowKey, Tuple[str, int]] = {}
        self.events_seen = 0
        #: Coalescing window for background standby syncs: mappings created
        #: within one window cost a single configuration write.
        self.sync_delay = sync_delay
        #: What the standby currently holds (key -> mapping), per the last
        #: acknowledged sync write.  Recovery replays ``shadow - _synced``.
        self._synced: Dict[FlowKey, Tuple[str, int]] = {}
        self._sync_scheduled = False
        self._sync_inflight = False
        self._sync_dirty = False
        #: Background sync writes completed (observability for the benchmark).
        self.sync_writes = 0
        self._recovering = False
        self._auto_update_routing: Optional[Callable[[], Future]] = None
        #: Completion future of an automatically triggered recovery (if any).
        self.auto_recovery: Optional[Future] = None

    # -- monitoring phase ---------------------------------------------------------------------------

    def arm(self, standby_mb: Optional[str] = None) -> Future:
        """Subscribe to mapping-creation events; pre-clone config to the standby.

        With a standby (given here or at construction) the primary's full
        configuration is cloned to it immediately, and every shadowed mapping
        is subsequently synced in the background — so the eventual failover
        has (almost) nothing left to restore.  Without one, the app runs the
        legacy restore-at-failure strategy.
        """
        if standby_mb is not None:
            self.standby_mb = standby_mb
        self.nb.subscribe_events(self._on_event)
        futures = [self.nb.enable_events(self.protected_mb, EVENT_MAPPING_CREATED)]
        if self.standby_mb is not None:
            futures.append(self.nb.clone_config(self.protected_mb, self.standby_mb))
            self._log(f"pre-cloned configuration to standby {self.standby_mb}")
        self._log(f"armed: listening for {EVENT_MAPPING_CREATED} from {self.protected_mb}")
        return all_of(self.sim, futures)

    def enable_auto_failover(self, update_routing: Callable[[], Future]) -> None:
        """Fail over to the standby automatically when the primary is declared dead.

        The controller's liveness machinery (heartbeat timeout or an explicit
        ``kill``) emits an ``openmb.instance_down`` event; on seeing one for
        the protected instance, the app starts ``recover_to`` onto its armed
        standby with the given routing update.
        """
        self._auto_update_routing = update_routing

    def _on_event(self, event: Event) -> None:
        if event.code == EventCode.INSTANCE_DOWN and event.mb_name == self.protected_mb:
            self._on_primary_down(event)
            return
        if event.mb_name != self.protected_mb or event.code != EVENT_MAPPING_CREATED:
            return
        if event.key is None:
            return
        self.events_seen += 1
        external_ip = str(event.values.get("external_ip", ""))
        external_port = int(event.values.get("external_port", 0))
        # The NAT raises the event with the outbound key (internal host as source).
        self.shadow[event.key] = (external_ip, external_port)
        self._schedule_sync()

    def _on_primary_down(self, event: Event) -> None:
        """The controller declared the protected instance dead."""
        self._log(f"{self.protected_mb} declared dead ({event.values.get('reason', '?')})")
        if self._auto_update_routing is None or self.standby_mb is None or self._recovering:
            return
        self.auto_recovery = self.recover_to(self.standby_mb, update_routing=self._auto_update_routing)

    # -- background standby sync ---------------------------------------------------------------------

    def _schedule_sync(self) -> None:
        """Coalesce shadow changes into one standby write per sync window."""
        if self.standby_mb is None or self._recovering:
            return
        if self._sync_inflight:
            self._sync_dirty = True  # rewrite once the in-flight write lands
            return
        if self._sync_scheduled:
            return
        self._sync_scheduled = True
        self.sim.schedule(self.sync_delay, self._flush_sync)

    def _flush_sync(self) -> None:
        """Write the current shadow to the standby's static-mapping config."""
        self._sync_scheduled = False
        if self.standby_mb is None or self._recovering:
            return
        snapshot = dict(self.shadow)
        if snapshot == self._synced:
            return
        self._sync_inflight = True

        def on_done(future: Future) -> None:
            self._sync_inflight = False
            if future.exception is None:
                self._synced = snapshot
                self.sync_writes += 1
            if self._sync_dirty:
                self._sync_dirty = False
                self._schedule_sync()

        try:
            write = self.nb.write_config(
                self.standby_mb, "NAT.StaticMappings", self._static_values(snapshot)
            )
        except Exception:
            self._sync_inflight = False
            return  # standby gone; recovery will surface the real failure
        write.add_done_callback(on_done)

    @staticmethod
    def _static_values(shadow: Dict[FlowKey, Tuple[str, int]]) -> list:
        """Render a shadow table as ``NAT.StaticMappings`` configuration values."""
        return [
            f"{key.nw_src}:{key.tp_src}={external_ip}:{external_port}"
            for key, (external_ip, external_port) in sorted(shadow.items())
        ]

    # -- recovery phase ------------------------------------------------------------------------------

    def recover_to(
        self,
        replacement_mb: str,
        *,
        update_routing: Callable[[], Future],
        config_keys_to_copy: Tuple[str, ...] = DEFAULT_CONFIG_KEYS,
    ) -> Future:
        """Bootstrap *replacement_mb* from the shadow table and re-route traffic to it.

        When the replacement is the armed standby, configuration was already
        pre-cloned and previously synced mappings are already installed; the
        recovery transaction replays only the unsynced delta (loss-free: every
        shadowed mapping ends up at the replacement) and flips routing.
        """
        self._recovering = True
        self.replacement_mb = replacement_mb
        self._update_routing = update_routing
        self._config_keys = config_keys_to_copy
        return self.start()

    def steps(self) -> Generator:
        pre_synced = self.replacement_mb == self.standby_mb
        replayed = {
            key: mapping
            for key, mapping in self.shadow.items()
            if not (pre_synced and self._synced.get(key) == mapping)
        }
        restorable: Dict[str, list] = {}
        if not pre_synced:
            # 1. (Legacy path) Copy the protected middlebox's essential
            #    configuration.  The failed instance may be unreachable, so
            #    this stays a best-effort read *outside* the transaction (a
            #    failure here must not abort recovery).
            try:
                values = yield self.nb.read_config(self.protected_mb, "*")
            except Exception:
                values = {}
            restorable = {key: vals for key, vals in (values or {}).items() if key in self._config_keys}
        static = self._static_values(self.shadow)
        # 2+3. Restore configuration and critical state into the replacement
        # and re-route to it — one transaction, so a half-restored replacement
        # never receives live traffic: if any write fails, the routing change
        # is rolled back along with it.  A fully pre-synced standby needs no
        # state write at all; failover degenerates to the routing flip.
        txn = self.nb.transaction()
        txn.observer = self._log
        if restorable:
            txn.write_config(self.replacement_mb, "*", restorable)
        if static and replayed:
            txn.write_config(self.replacement_mb, "NAT.StaticMappings", static)
        txn.reroute(apply=self._update_routing, label=f"reroute({self.replacement_mb})")
        handle = txn.commit()
        yield handle.done
        if restorable:
            self._log(f"restored {len(restorable)} configuration keys")
        if replayed:
            self._log(f"replayed {len(replayed)} critical mappings into {self.replacement_mb}")
        if pre_synced:
            self._log(f"{len(self.shadow) - len(replayed)} mappings were already pre-synced")
        self._log("routing updated to the replacement instance")
        self.report.details["transaction"] = handle.aggregate()
        # "Restored" counts what recovery itself wrote: the full shadow on the
        # legacy path, only the replayed delta onto a pre-synced standby (zero
        # when failover degenerated to the pure routing flip).
        self.report.details["mappings_restored"] = len(replayed) if pre_synced else len(static)
        self.report.details["mappings_presynced"] = len(self.shadow) - len(replayed)
        self.report.details["mappings_replayed"] = len(replayed)
        self.report.details["events_seen"] = self.events_seen
        return self.report
