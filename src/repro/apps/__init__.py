"""Control applications and ready-made scenario topologies."""

from .base import AppReport, ControlApplication
from .failover import FailureRecoveryApp
from .federation import FederationOverseerApp
from .migration import PerFlowMigrationApp, REMigrationApp
from .scaling import RebalanceApp, ScaleDownApp, ScaleUpApp
from .scenarios import (
    GUARANTEE_SCENARIOS,
    GuaranteeScenarioResult,
    REMigrationScenario,
    TwoInstanceScenario,
    build_re_migration_scenario,
    build_two_instance_scenario,
    run_guarantee_scenario,
)

__all__ = [
    "AppReport",
    "ControlApplication",
    "FailureRecoveryApp",
    "FederationOverseerApp",
    "PerFlowMigrationApp",
    "REMigrationApp",
    "RebalanceApp",
    "ScaleDownApp",
    "ScaleUpApp",
    "REMigrationScenario",
    "TwoInstanceScenario",
    "GUARANTEE_SCENARIOS",
    "GuaranteeScenarioResult",
    "build_re_migration_scenario",
    "build_two_instance_scenario",
    "run_guarantee_scenario",
]
