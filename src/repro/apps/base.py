"""Control application base class.

Control applications are the top layer of the OpenMB architecture (Figure 1):
they orchestrate middlebox state operations (via the northbound API) *in
tandem with* network routing changes (via the SDN controller).  Applications
are written as generator-based simulator processes: each ``yield`` waits for a
future returned by one of the two controllers, so the body reads as the same
numbered sequence of steps the paper gives for each scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from ..core.northbound import NorthboundAPI
from ..net.sdn import SDNController
from ..net.simulator import Future, Simulator


@dataclass
class AppReport:
    """What a control application reports when it finishes."""

    name: str
    started_at: float = 0.0
    finished_at: float = 0.0
    steps: List[str] = field(default_factory=list)
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    def log_step(self, description: str) -> None:
        self.steps.append(description)


class ControlApplication:
    """Base class for scenario-specific control applications."""

    name = "control-app"

    def __init__(self, sim: Simulator, northbound: NorthboundAPI, sdn: Optional[SDNController] = None) -> None:
        self.sim = sim
        self.nb = northbound
        self.sdn = sdn
        self.report = AppReport(name=self.name)

    # -- lifecycle ---------------------------------------------------------------------------------

    def steps(self) -> Generator:
        """The application body; subclasses implement this as a generator."""
        raise NotImplementedError

    def start(self) -> Future:
        """Spawn the application as a simulator process; returns its completion future."""
        self.report.started_at = self.sim.now

        def wrapper() -> Generator:
            result = yield from self.steps()
            self.report.finished_at = self.sim.now
            return result if result is not None else self.report

        return self.sim.process(wrapper(), name=self.name)

    def run(self, *, limit: float = 1e9) -> AppReport:
        """Convenience: start the application and run the simulator until it finishes."""
        future = self.start()
        result = self.sim.run_until(future, limit=limit)
        return result if isinstance(result, AppReport) else self.report

    # -- helpers -----------------------------------------------------------------------------------

    def _log(self, message: str) -> None:
        self.report.log_step(f"[t={self.sim.now:.4f}s] {message}")
