"""Elastic scaling control applications (paper section 6.2).

Since the transactional-API redesign the three scaling applications are thin
wrappers over :meth:`~repro.core.northbound.NorthboundAPI.transaction`:

* :class:`ScaleUpApp` declares one ``migrate`` composite — clone the
  configuration, then per subnet: stats → move → re-route — and commits;
* :class:`ScaleDownApp` declares one ``drain`` composite — move everything,
  merge the shared reporting state, re-route, wait for finalisation,
  terminate the spare;
* :class:`RebalanceApp` declares one ``rebalance`` composite — measure load
  and move state from the busiest to the idlest replica.

The transaction coordinator supplies what the hand-sequenced versions could
not: route installation ordered on the per-flow put-ACKs
(``state_installed``) instead of whole-operation completion, and
all-or-nothing rollback if any step fails.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional, Sequence

from ..core.flowspace import FlowPattern
from ..core.northbound import NorthboundAPI
from ..net.sdn import SDNController
from ..net.simulator import Future, Simulator
from .base import ControlApplication

RoutingCallback = Callable[[FlowPattern], Future]


class ScaleUpApp(ControlApplication):
    """Add a middlebox instance and re-balance a subset of in-progress flows onto it."""

    name = "scale-up"

    def __init__(
        self,
        sim: Simulator,
        northbound: NorthboundAPI,
        *,
        existing_mb: str,
        new_mb: str,
        patterns: Sequence[FlowPattern | list | dict | str],
        update_routing: RoutingCallback,
        sdn: Optional[SDNController] = None,
        wait_for_finalize: bool = False,
    ) -> None:
        super().__init__(sim, northbound, sdn)
        self.existing_mb = existing_mb
        self.new_mb = new_mb
        self.patterns = [p if isinstance(p, FlowPattern) else FlowPattern.parse(p) for p in patterns]
        self.update_routing = update_routing
        self.wait_for_finalize = wait_for_finalize

    def steps(self) -> Generator:
        txn = self.nb.transaction()
        txn.observer = self._log
        move_steps = txn.migrate(
            self.existing_mb,
            self.new_mb,
            self.patterns,
            clone_configuration=True,
            reroute=self.update_routing,
            query_stats=True,
            wait_for_finalize=self.wait_for_finalize,
        )
        handle = txn.commit()
        yield handle.done

        moved_records = [step.handle.record for step in move_steps]
        for pattern, record in zip(self.patterns, moved_records):
            self._log(
                f"moved {record.chunks_transferred} chunks for {pattern!r} "
                f"in {record.duration:.4f}s ({record.events_forwarded} events forwarded)"
            )
        self.report.details["transaction"] = handle.aggregate()
        self.report.details["moves"] = moved_records
        self.report.details["chunks_moved"] = sum(r.chunks_transferred for r in moved_records)
        self.report.details["events_forwarded"] = sum(r.events_forwarded for r in moved_records)
        return self.report


class ScaleDownApp(ControlApplication):
    """Consolidate a spare middlebox instance back into the remaining instance."""

    name = "scale-down"

    def __init__(
        self,
        sim: Simulator,
        northbound: NorthboundAPI,
        *,
        spare_mb: str,
        remaining_mb: str,
        update_routing: RoutingCallback,
        terminate: Optional[Callable[[], None]] = None,
        sdn: Optional[SDNController] = None,
        wait_for_finalize: bool = True,
    ) -> None:
        super().__init__(sim, northbound, sdn)
        self.spare_mb = spare_mb
        self.remaining_mb = remaining_mb
        self.update_routing = update_routing
        self.terminate = terminate
        self.wait_for_finalize = wait_for_finalize

    def steps(self) -> Generator:
        txn = self.nb.transaction()
        txn.observer = self._log
        drain_steps = txn.drain(
            self.spare_mb,
            self.remaining_mb,
            reroute=self.update_routing,
            terminate=self.terminate,
            wait_for_finalize=self.wait_for_finalize,
        )
        handle = txn.commit()
        yield handle.done

        move_record = drain_steps["move"].handle.record
        merge_record = drain_steps["merge"].handle.record
        if self.terminate is not None:
            self._log(f"terminated {self.spare_mb}")
        self.report.details["transaction"] = handle.aggregate()
        self.report.details["move"] = move_record
        self.report.details["merge"] = merge_record
        self.report.details["chunks_moved"] = move_record.chunks_transferred
        return self.report


class RebalanceApp(ControlApplication):
    """Move in-progress flows between replicas to even out load (long-flow re-balancing)."""

    name = "rebalance"

    def __init__(
        self,
        sim: Simulator,
        northbound: NorthboundAPI,
        *,
        replicas: Sequence[str],
        patterns_by_replica: dict,
        update_routing: Callable[[str, FlowPattern], Future],
        sdn: Optional[SDNController] = None,
    ) -> None:
        super().__init__(sim, northbound, sdn)
        self.replicas = list(replicas)
        self.patterns_by_replica = dict(patterns_by_replica)
        self.update_routing = update_routing

    def steps(self) -> Generator:
        txn = self.nb.transaction()
        txn.observer = self._log
        step = txn.rebalance(self.replicas, self.patterns_by_replica, self.update_routing)
        handle = txn.commit()
        yield handle.done

        detail = step.record.detail
        self.report.details["loads_before"] = dict(detail.get("loads_before", {}))
        if detail.get("balanced"):
            self._log("load already balanced; nothing to do")
            return self.report
        if "no_pattern_for" in detail:
            self._log(f"no re-balance pattern configured for {detail['no_pattern_for']}")
            return self.report
        record = step.handle.record
        self._log(f"moved {record.chunks_transferred} chunks {detail['moved_from']} -> {detail['moved_to']}")
        self.report.details["transaction"] = handle.aggregate()
        self.report.details["moved_from"] = detail["moved_from"]
        self.report.details["moved_to"] = detail["moved_to"]
        self.report.details["chunks_moved"] = record.chunks_transferred
        return self.report
