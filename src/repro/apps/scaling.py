"""Elastic scaling control application (paper section 6.2).

Scale-up launches an additional monitoring instance, duplicates its
configuration, queries how much per-flow state exists for the subnets being
re-balanced, moves that per-flow state, and only then re-routes the affected
flows to the new instance.  Scale-down moves all per-flow state back to the
remaining instance, merges the shared reporting state (so packet/flow counters
are neither over- nor under-reported), re-routes, and terminates the spare.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, Sequence

from ..core.flowspace import FlowPattern
from ..core.northbound import NorthboundAPI
from ..net.sdn import SDNController
from ..net.simulator import Future, Simulator
from .base import AppReport, ControlApplication

RoutingCallback = Callable[[FlowPattern], Future]


class ScaleUpApp(ControlApplication):
    """Add a middlebox instance and re-balance a subset of in-progress flows onto it."""

    name = "scale-up"

    def __init__(
        self,
        sim: Simulator,
        northbound: NorthboundAPI,
        *,
        existing_mb: str,
        new_mb: str,
        patterns: Sequence[FlowPattern | list | dict | str],
        update_routing: RoutingCallback,
        sdn: Optional[SDNController] = None,
        wait_for_finalize: bool = False,
    ) -> None:
        super().__init__(sim, northbound, sdn)
        self.existing_mb = existing_mb
        self.new_mb = new_mb
        self.patterns = [p if isinstance(p, FlowPattern) else FlowPattern.parse(p) for p in patterns]
        self.update_routing = update_routing
        self.wait_for_finalize = wait_for_finalize

    def steps(self) -> Generator:
        # 1. Duplicate configuration from the existing instance onto the new one.
        self._log(f"cloning configuration {self.existing_mb} -> {self.new_mb}")
        values = yield self.nb.read_config(self.existing_mb, "*")
        yield self.nb.write_config(self.new_mb, "*", values)

        moved_records = []
        for pattern in self.patterns:
            # 2. Query how much per-flow state exists for this subnet.
            stats = yield self.nb.stats(self.existing_mb, pattern)
            self._log(f"stats for {pattern!r}: {stats}")
            # 3. Move the per-flow state for the flows being re-balanced.
            handle = self.nb.move_internal(self.existing_mb, self.new_mb, pattern)
            record = yield handle.completed
            moved_records.append(record)
            self._log(
                f"moved {record.chunks_transferred} chunks for {pattern!r} "
                f"in {record.duration:.4f}s ({record.events_forwarded} events forwarded)"
            )
            # 4. Route the moved flows to the new instance.
            yield self.update_routing(pattern)
            self._log(f"routing updated for {pattern!r}")
            if self.wait_for_finalize:
                yield handle.finalized
                self._log(f"source state deleted for {pattern!r}")
        self.report.details["moves"] = moved_records
        self.report.details["chunks_moved"] = sum(r.chunks_transferred for r in moved_records)
        self.report.details["events_forwarded"] = sum(r.events_forwarded for r in moved_records)
        return self.report


class ScaleDownApp(ControlApplication):
    """Consolidate a spare middlebox instance back into the remaining instance."""

    name = "scale-down"

    def __init__(
        self,
        sim: Simulator,
        northbound: NorthboundAPI,
        *,
        spare_mb: str,
        remaining_mb: str,
        update_routing: RoutingCallback,
        terminate: Optional[Callable[[], None]] = None,
        sdn: Optional[SDNController] = None,
        wait_for_finalize: bool = True,
    ) -> None:
        super().__init__(sim, northbound, sdn)
        self.spare_mb = spare_mb
        self.remaining_mb = remaining_mb
        self.update_routing = update_routing
        self.terminate = terminate
        self.wait_for_finalize = wait_for_finalize

    def steps(self) -> Generator:
        wildcard = FlowPattern.wildcard()
        # 1. Transfer the per-flow reporting/supporting state for all flows.
        self._log(f"moving all per-flow state {self.spare_mb} -> {self.remaining_mb}")
        move = self.nb.move_internal(self.spare_mb, self.remaining_mb, wildcard)
        move_record = yield move.completed
        # 2. Merge the shared reporting (and supporting) state.
        self._log(f"merging shared state {self.spare_mb} -> {self.remaining_mb}")
        merge = self.nb.merge_internal(self.spare_mb, self.remaining_mb)
        merge_record = yield merge.completed
        # 3. Route flows to the remaining instance.
        yield self.update_routing(wildcard)
        self._log("routing updated to the remaining instance")
        if self.wait_for_finalize:
            # Wait until both operations have fully finalised (source state deleted,
            # transfer markers cleared) before tearing the spare instance down.
            yield [move.finalized, merge.finalized]
            self._log("state deleted at the spare instance and transfers ended")
        # 4. Terminate the unneeded instance.
        if self.terminate is not None:
            self.terminate()
            self._log(f"terminated {self.spare_mb}")
        self.report.details["move"] = move_record
        self.report.details["merge"] = merge_record
        self.report.details["chunks_moved"] = move_record.chunks_transferred
        return self.report


class RebalanceApp(ControlApplication):
    """Move in-progress flows between replicas to even out load (long-flow re-balancing)."""

    name = "rebalance"

    def __init__(
        self,
        sim: Simulator,
        northbound: NorthboundAPI,
        *,
        replicas: Sequence[str],
        patterns_by_replica: dict,
        update_routing: Callable[[str, FlowPattern], Future],
        sdn: Optional[SDNController] = None,
    ) -> None:
        super().__init__(sim, northbound, sdn)
        self.replicas = list(replicas)
        self.patterns_by_replica = dict(patterns_by_replica)
        self.update_routing = update_routing

    def steps(self) -> Generator:
        # Measure load (resident per-flow state) at every replica.
        loads = {}
        for replica in self.replicas:
            stats = yield self.nb.stats(replica, None)
            loads[replica] = stats.get("perflow_supporting", 0) + stats.get("perflow_reporting", 0)
        self.report.details["loads_before"] = dict(loads)
        busiest = max(loads, key=loads.get)
        idlest = min(loads, key=loads.get)
        if busiest == idlest or loads[busiest] - loads[idlest] < 2:
            self._log("load already balanced; nothing to do")
            return self.report
        pattern = self.patterns_by_replica.get(busiest)
        if pattern is None:
            self._log(f"no re-balance pattern configured for {busiest}")
            return self.report
        pattern = pattern if isinstance(pattern, FlowPattern) else FlowPattern.parse(pattern)
        self._log(f"moving {pattern!r} from {busiest} to {idlest}")
        handle = self.nb.move_internal(busiest, idlest, pattern)
        record = yield handle.completed
        yield self.update_routing(idlest, pattern)
        self.report.details["moved_from"] = busiest
        self.report.details["moved_to"] = idlest
        self.report.details["chunks_moved"] = record.chunks_transferred
        return self.report
