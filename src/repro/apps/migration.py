"""Live migration control applications (paper sections 2 and 6.1).

Two applications live here:

* :class:`REMigrationApp` — the paper's section 6.1 application: when half of
  an application's VMs migrate from data center A to data center B, launch a
  new RE decoder in DC B, clone the original decoder's cache, add a second
  cache at the encoder, re-route the migrated subnet, and finally tell the
  encoder to use the second cache for traffic to DC B.
* :class:`PerFlowMigrationApp` — the generic per-flow middlebox migration used
  with the IDS in the VM-snapshot comparison (section 8.1.2): clone the
  configuration, move the per-flow state for the migrated flows, and re-route
  them, in that order.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional, Sequence

from ..core.flowspace import FlowPattern
from ..core.northbound import NorthboundAPI
from ..net.sdn import SDNController
from ..net.simulator import Future, Simulator
from .base import AppReport, ControlApplication

RoutingCallback = Callable[[], Future]


class REMigrationApp(ControlApplication):
    """Migrate the RE decoder function for a subnet of application VMs to a new data center."""

    name = "re-migration"

    def __init__(
        self,
        sim: Simulator,
        northbound: NorthboundAPI,
        *,
        encoder: str,
        orig_decoder: str,
        new_decoder: str,
        dc_a_prefix: str = "1.1.1.0/24",
        dc_b_prefix: str = "1.1.2.0/24",
        update_routing: RoutingCallback,
        sdn: Optional[SDNController] = None,
        wait_for_clone_quiescence: bool = False,
    ) -> None:
        super().__init__(sim, northbound, sdn)
        self.encoder = encoder
        self.orig_decoder = orig_decoder
        self.new_decoder = new_decoder
        self.dc_a_prefix = dc_a_prefix
        self.dc_b_prefix = dc_b_prefix
        self.update_routing = update_routing
        self.wait_for_clone_quiescence = wait_for_clone_quiescence

    def steps(self) -> Generator:
        # 1. Launch a new RE decoder in DC B (done by the operator / scenario) and
        #    duplicate the configuration of the original decoder.
        self._log(f"cloning configuration {self.orig_decoder} -> {self.new_decoder}")
        values = yield self.nb.read_config(self.orig_decoder, "*")
        yield self.nb.write_config(self.new_decoder, "*", values)

        # 2. Clone the original decoder's cache (shared supporting state).
        self._log(f"cloning decoder cache {self.orig_decoder} -> {self.new_decoder}")
        clone = self.nb.clone_support(self.orig_decoder, self.new_decoder)
        clone_record = yield clone.completed
        self._log(
            f"clone transferred {clone_record.bytes_transferred} bytes "
            f"in {clone_record.duration:.4f}s"
        )

        # 3. Add a second cache to the encoder; internally the encoder clones its
        #    original cache to create the new one.
        self._log(f"adding a second cache at {self.encoder}")
        yield self.nb.write_config(self.encoder, "NumCaches", [2])

        # 4. Update the network routing so traffic for DC B's subnet reaches the new decoder.
        self._log(f"re-routing {self.dc_b_prefix} to the new decoder")
        yield self.update_routing()

        # 5. Tell the encoder to start using the second cache for traffic going to the
        #    VMs in DC B and the first cache for traffic going to the VMs in DC A.
        if self.wait_for_clone_quiescence:
            yield clone.finalized
            self._log("clone events quiesced")
        self._log("switching the encoder's cache selection")
        yield self.nb.write_config(self.encoder, "CacheFlows", [self.dc_a_prefix, self.dc_b_prefix])

        # 6. The clone transaction is over: routing and the encoder's cache selection
        #    are in place, so the original decoder must stop replaying its own (DC A)
        #    traffic to the new decoder — from here the two caches evolve independently,
        #    in lock-step with their respective encoder caches.
        yield self.nb.end_transfer(self.orig_decoder)
        self._log("ended the clone transfer at the original decoder")

        self.report.details["clone"] = clone_record
        self.report.details["clone_bytes"] = clone_record.bytes_transferred
        self.report.details["events_forwarded"] = clone_record.events_forwarded
        return self.report


class PerFlowMigrationApp(ControlApplication):
    """Migrate the per-flow state of a middlebox (e.g. an IDS) for a subset of flows."""

    name = "perflow-migration"

    def __init__(
        self,
        sim: Simulator,
        northbound: NorthboundAPI,
        *,
        old_mb: str,
        new_mb: str,
        pattern: FlowPattern | list | dict | str,
        update_routing: Callable[[FlowPattern], Future],
        clone_configuration: bool = True,
        sdn: Optional[SDNController] = None,
        wait_for_finalize: bool = False,
    ) -> None:
        super().__init__(sim, northbound, sdn)
        self.old_mb = old_mb
        self.new_mb = new_mb
        self.pattern = pattern if isinstance(pattern, FlowPattern) else FlowPattern.parse(pattern)
        self.update_routing = update_routing
        self.clone_configuration = clone_configuration
        self.wait_for_finalize = wait_for_finalize

    def steps(self) -> Generator:
        if self.clone_configuration:
            self._log(f"cloning configuration {self.old_mb} -> {self.new_mb}")
            values = yield self.nb.read_config(self.old_mb, "*")
            yield self.nb.write_config(self.new_mb, "*", values)
        self._log(f"moving per-flow state for {self.pattern!r}")
        handle = self.nb.move_internal(self.old_mb, self.new_mb, self.pattern)
        record = yield handle.completed
        self._log(
            f"move returned after {record.duration:.4f}s with {record.chunks_transferred} chunks"
        )
        yield self.update_routing(self.pattern)
        self._log("routing updated; migrated flows now reach the new middlebox")
        if self.wait_for_finalize:
            yield handle.finalized
            self._log("source state deleted after quiescence")
        self.report.details["move"] = record
        self.report.details["chunks_moved"] = record.chunks_transferred
        self.report.details["bytes_moved"] = record.bytes_transferred
        self.report.details["events_forwarded"] = record.events_forwarded
        return self.report
