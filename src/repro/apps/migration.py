"""Live migration control applications (paper sections 2 and 6.1).

Two applications live here, both written on the transactional northbound API:

* :class:`REMigrationApp` — the paper's section 6.1 application: when half of
  an application's VMs migrate from data center A to data center B, launch a
  new RE decoder in DC B, clone the original decoder's cache, add a second
  cache at the encoder, re-route the migrated subnet, and finally tell the
  encoder to use the second cache for traffic to DC B.  The whole numbered
  sequence is one transaction: a failure anywhere (say, the encoder rejecting
  the cache switch) rolls the routing change back instead of leaving DC B's
  traffic pointed at a decoder the encoder is not feeding.
* :class:`PerFlowMigrationApp` — the generic per-flow middlebox migration used
  with the IDS in the VM-snapshot comparison (section 8.1.2): one ``migrate``
  composite (clone the configuration, move the per-flow state, re-route once
  the per-flow put-ACKs arrive).
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from ..core.flowspace import FlowPattern
from ..core.northbound import NorthboundAPI
from ..net.sdn import SDNController
from ..net.simulator import Future, Simulator
from .base import ControlApplication

RoutingCallback = Callable[[], Future]


class REMigrationApp(ControlApplication):
    """Migrate the RE decoder function for a subnet of application VMs to a new data center."""

    name = "re-migration"

    def __init__(
        self,
        sim: Simulator,
        northbound: NorthboundAPI,
        *,
        encoder: str,
        orig_decoder: str,
        new_decoder: str,
        dc_a_prefix: str = "1.1.1.0/24",
        dc_b_prefix: str = "1.1.2.0/24",
        update_routing: RoutingCallback,
        sdn: Optional[SDNController] = None,
        wait_for_clone_quiescence: bool = False,
    ) -> None:
        super().__init__(sim, northbound, sdn)
        self.encoder = encoder
        self.orig_decoder = orig_decoder
        self.new_decoder = new_decoder
        self.dc_a_prefix = dc_a_prefix
        self.dc_b_prefix = dc_b_prefix
        self.update_routing = update_routing
        self.wait_for_clone_quiescence = wait_for_clone_quiescence

    def steps(self) -> Generator:
        txn = self.nb.transaction()
        txn.observer = self._log
        # 1. The new decoder was launched by the operator/scenario; duplicate
        #    the original decoder's configuration onto it.
        txn.clone_config(self.orig_decoder, self.new_decoder)
        # 2. Clone the original decoder's cache (shared supporting state).
        clone = txn.clone(self.orig_decoder, self.new_decoder)
        # 3. Add a second cache to the encoder (it clones its original cache).
        #    The clone's state-installed point gates this — not whole-clone
        #    completion — so the cache switch-over preparation overlaps with
        #    the clone's remaining event replay.
        second_cache = txn.write_config(self.encoder, "NumCaches", [2], after=(clone, "installed"))
        # 4. Re-route DC B's subnet to the new decoder once the cloned cache is
        #    resident there and the encoder has its second cache.
        txn.reroute(
            pattern=FlowPattern(nw_dst=self.dc_b_prefix),
            apply=self.update_routing,
            after=[second_cache, (clone, "installed")],
            label=f"reroute({self.dc_b_prefix})",
        )
        # 5. Switch the encoder's cache selection; optionally wait for the
        #    clone's re-process events to quiesce first.
        if self.wait_for_clone_quiescence:
            txn.barrier([clone], finalized=True)
        txn.write_config(self.encoder, "CacheFlows", [self.dc_a_prefix, self.dc_b_prefix])
        # 6. The clone transaction is over: routing and the cache selection are
        #    in place, so the original decoder stops replaying its own (DC A)
        #    traffic to the new decoder — from here the two caches evolve
        #    independently, in lock-step with their respective encoder caches.
        txn.end_transfer(self.orig_decoder)

        handle = txn.commit()
        yield handle.done

        clone_record = clone.handle.record
        self._log(
            f"clone transferred {clone_record.bytes_transferred} bytes "
            f"in {clone_record.duration:.4f}s"
        )
        self.report.details["transaction"] = handle.aggregate()
        self.report.details["clone"] = clone_record
        self.report.details["clone_bytes"] = clone_record.bytes_transferred
        self.report.details["events_forwarded"] = clone_record.events_forwarded
        return self.report


class PerFlowMigrationApp(ControlApplication):
    """Migrate the per-flow state of a middlebox (e.g. an IDS) for a subset of flows."""

    name = "perflow-migration"

    def __init__(
        self,
        sim: Simulator,
        northbound: NorthboundAPI,
        *,
        old_mb: str,
        new_mb: str,
        pattern: FlowPattern | list | dict | str,
        update_routing: Callable[[FlowPattern], Future],
        clone_configuration: bool = True,
        sdn: Optional[SDNController] = None,
        wait_for_finalize: bool = False,
    ) -> None:
        super().__init__(sim, northbound, sdn)
        self.old_mb = old_mb
        self.new_mb = new_mb
        self.pattern = pattern if isinstance(pattern, FlowPattern) else FlowPattern.parse(pattern)
        self.update_routing = update_routing
        self.clone_configuration = clone_configuration
        self.wait_for_finalize = wait_for_finalize

    def steps(self) -> Generator:
        txn = self.nb.transaction()
        txn.observer = self._log
        moves = txn.migrate(
            self.old_mb,
            self.new_mb,
            [self.pattern],
            clone_configuration=self.clone_configuration,
            reroute=self.update_routing,
            wait_for_finalize=self.wait_for_finalize,
        )
        handle = txn.commit()
        yield handle.done

        record = moves[0].handle.record
        self._log(
            f"move returned after {record.duration:.4f}s with {record.chunks_transferred} chunks"
        )
        self.report.details["transaction"] = handle.aggregate()
        self.report.details["move"] = record
        self.report.details["chunks_moved"] = record.chunks_transferred
        self.report.details["bytes_moved"] = record.bytes_transferred
        self.report.details["events_forwarded"] = record.events_forwarded
        return self.report
