"""Ready-made scenario topologies used by examples, tests, and benchmarks.

Two scenario builders mirror the paper's two control-application examples:

* :func:`build_two_instance_scenario` — the elastic-scaling / generic
  migration topology (Figure 6(b)): a client gateway and a server gateway
  joined by an ingress and an egress switch, with two middlebox instances
  (monitors, IDSes, ...) connected between the switches.  Traffic is routed
  through instance 1 initially; re-balancing a subnet means installing a
  higher-priority route through instance 2.
* :func:`build_re_migration_scenario` — the live-migration topology
  (Figure 6(a)): a remote site with an RE encoder, a WAN switch, and two data
  centers each with an RE decoder and an application gateway host.

Both builders wire up the full OpenMB stack (network topology, SDN controller,
MB controller, northbound API) and return a bundle with helpers for routing
changes and trace injection, so application code and benchmarks stay short.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.controller import ControllerConfig, MBController
from ..core.flowspace import FlowPattern, IPv4Prefix
from ..core.northbound import NorthboundAPI
from ..core.operations import OperationHandle, OperationRecord
from ..core.transfer import TransferGuarantee, TransferSpec
from ..middleboxes.base import Middlebox
from ..middleboxes.monitor import PassiveMonitor
from ..middleboxes.re import REDecoder, REEncoder
from ..net.packet import Packet
from ..net.sdn import RouteHandle, SDNController
from ..net.simulator import Future, Simulator
from ..net.switch import Switch
from ..net.topology import Host, Topology
from ..traffic.records import Trace
from ..traffic.replay import TraceReplayer


@dataclass
class ScenarioBase:
    """Common plumbing shared by the scenario bundles."""

    sim: Simulator
    topology: Topology
    sdn: SDNController
    controller: MBController
    northbound: NorthboundAPI
    route_priority: int = 100

    def next_priority(self) -> int:
        """Monotonically increasing rule priority, so newer routes win."""
        self.route_priority += 10
        return self.route_priority


@dataclass
class TwoInstanceScenario(ScenarioBase):
    """The scaling/migration topology with two interchangeable middlebox instances."""

    client_gw: Host = None  # type: ignore[assignment]
    server_gw: Host = None  # type: ignore[assignment]
    ingress: Switch = None  # type: ignore[assignment]
    egress: Switch = None  # type: ignore[assignment]
    mb1: Middlebox = None  # type: ignore[assignment]
    mb2: Middlebox = None  # type: ignore[assignment]
    client_prefix: str = "10.1.0.0/16"
    server_prefix: str = "172.16.0.0/16"
    routes: List[RouteHandle] = field(default_factory=list)

    # -- routing ------------------------------------------------------------------------------------

    def route_via(self, middlebox: Middlebox | str, pattern: FlowPattern, *, bidirectional: bool = True) -> Future:
        """Route flows matching *pattern* through the given instance.

        Installs a forward route (client gateway to server gateway) and, when
        ``bidirectional``, the corresponding reverse route for return traffic.
        Returns a future that completes when every switch has applied its rules.
        """
        name = middlebox.name if isinstance(middlebox, Middlebox) else middlebox
        priority = self.next_priority()
        forward = self.sdn.route(
            pattern, self.client_gw, self.server_gw, waypoints=[name], priority=priority
        )
        self.routes.append(forward)
        futures = [forward.installed]
        if bidirectional:
            reverse_pattern = self._reverse(pattern)
            reverse = self.sdn.route(
                reverse_pattern, self.server_gw, self.client_gw, waypoints=[name], priority=priority
            )
            self.routes.append(reverse)
            futures.append(reverse.installed)
        from ..net.simulator import all_of

        return all_of(self.sim, futures)

    # -- stateful operations --------------------------------------------------------------------------

    def move_with_spec(
        self, pattern: FlowPattern | Dict[str, object] | List[str] | str | None, spec: Optional[TransferSpec] = None
    ) -> OperationHandle:
        """moveInternal mb1 -> mb2 under a specific transfer spec."""
        return self.northbound.move_internal(self.mb1.name, self.mb2.name, pattern, spec=spec)

    @staticmethod
    def _reverse(pattern: FlowPattern) -> FlowPattern:
        fields = pattern.as_dict()
        return FlowPattern(
            nw_proto=fields.get("nw_proto"),
            nw_src=fields.get("nw_dst"),
            nw_dst=fields.get("nw_src"),
            tp_src=fields.get("tp_dst"),
            tp_dst=fields.get("tp_src"),
        )

    # -- traffic -------------------------------------------------------------------------------------

    def inject(self, trace: Trace, *, speedup: float = 1.0, start_at: Optional[float] = None) -> TraceReplayer:
        """Schedule a trace for replay; each packet enters at the gateway on its source side.

        ``start_at`` defaults to the current simulated time so the trace's relative
        packet spacing is preserved (injecting "in the past" would collapse the
        early part of the trace into a single instant).
        """
        if start_at is None:
            start_at = self.sim.now
        server_prefix = IPv4Prefix.parse(self.server_prefix)

        def entry(packet: Packet) -> None:
            if server_prefix.contains_ip(packet.nw_src):
                self.server_gw.send(packet)
            else:
                self.client_gw.send(packet)

        replayer = TraceReplayer(self.sim, trace, entry, speedup=speedup, start_at=start_at)
        replayer.schedule()
        return replayer


def build_two_instance_scenario(
    *,
    sim: Optional[Simulator] = None,
    mb_factory: Callable[[Simulator, str], Middlebox] = lambda sim, name: PassiveMonitor(sim, name),
    mb_names: tuple = ("mb1", "mb2"),
    client_prefix: str = "10.1.0.0/16",
    server_prefix: str = "172.16.0.0/16",
    quiescence_timeout: float = 0.5,
    controller_config: Optional[ControllerConfig] = None,
    install_default_route: bool = True,
) -> TwoInstanceScenario:
    """Build the two-instance topology and route all traffic through instance 1."""
    sim = sim or Simulator()
    topology = Topology(sim)
    client_gw = topology.add_host("client-gw", "10.1.0.254")
    server_gw = topology.add_host("server-gw", "172.16.0.254")
    ingress = Switch(sim, "s-ingress")
    egress = Switch(sim, "s-egress")
    topology.add_node(ingress)
    topology.add_node(egress)
    mb1 = mb_factory(sim, mb_names[0])
    mb2 = mb_factory(sim, mb_names[1])
    topology.add_node(mb1)
    topology.add_node(mb2)
    topology.connect(client_gw, ingress)
    topology.connect(egress, server_gw)
    for middlebox in (mb1, mb2):
        topology.connect(ingress, middlebox)
        topology.connect(middlebox, egress)
    sdn = SDNController(sim, topology)
    config = controller_config or ControllerConfig(quiescence_timeout=quiescence_timeout)
    controller = MBController(sim, config)
    controller.register(mb1)
    controller.register(mb2)
    northbound = NorthboundAPI(controller)
    scenario = TwoInstanceScenario(
        sim=sim,
        topology=topology,
        sdn=sdn,
        controller=controller,
        northbound=northbound,
        client_gw=client_gw,
        server_gw=server_gw,
        ingress=ingress,
        egress=egress,
        mb1=mb1,
        mb2=mb2,
        client_prefix=client_prefix,
        server_prefix=server_prefix,
    )
    if install_default_route:
        default = FlowPattern(nw_dst=server_prefix)
        scenario.route_via(mb1, default)
        sim.run(until=sim.now + 0.05)  # let the initial rules install before traffic starts
    return scenario


@dataclass
class REMigrationScenario(ScenarioBase):
    """The live-migration topology: remote encoder, WAN, and two data centers."""

    remote_gw: Host = None  # type: ignore[assignment]
    encoder: REEncoder = None  # type: ignore[assignment]
    remote_switch: Switch = None  # type: ignore[assignment]
    wan: Switch = None  # type: ignore[assignment]
    decoder_a: REDecoder = None  # type: ignore[assignment]
    decoder_b: REDecoder = None  # type: ignore[assignment]
    dc_a_switch: Switch = None  # type: ignore[assignment]
    dc_b_switch: Switch = None  # type: ignore[assignment]
    dc_a_host: Host = None  # type: ignore[assignment]
    dc_b_host: Host = None  # type: ignore[assignment]
    dc_a_prefix: str = "1.1.1.0/24"
    dc_b_prefix: str = "1.1.2.0/24"
    app_prefix: str = "1.1.0.0/16"
    routes: List[RouteHandle] = field(default_factory=list)

    def install_initial_routes(self) -> Future:
        """Route all application traffic through the encoder and decoder A."""
        pattern = FlowPattern(nw_dst=self.app_prefix)
        handle = self.sdn.install_route(
            pattern,
            [
                self.remote_gw,
                self.remote_switch,
                self.encoder,
                self.wan,
                self.decoder_a,
                self.dc_a_switch,
                self.dc_a_host,
            ],
            priority=self.next_priority(),
        )
        self.routes.append(handle)
        return handle.installed

    def reroute_dc_b(self) -> Future:
        """Route the migrated subnet (DC B's prefix) to the new decoder in DC B."""
        pattern = FlowPattern(nw_dst=self.dc_b_prefix)
        handle = self.sdn.install_route(
            pattern,
            [
                self.remote_gw,
                self.remote_switch,
                self.encoder,
                self.wan,
                self.decoder_b,
                self.dc_b_switch,
                self.dc_b_host,
            ],
            priority=self.next_priority(),
        )
        self.routes.append(handle)
        return handle.installed

    def inject(self, trace: Trace, *, speedup: float = 1.0, start_at: Optional[float] = None) -> TraceReplayer:
        """Replay a trace from the remote site toward the data centers."""
        if start_at is None:
            start_at = self.sim.now
        replayer = TraceReplayer.via_host(self.sim, trace, self.remote_gw, speedup=speedup, start_at=start_at)
        replayer.schedule()
        return replayer


def build_re_migration_scenario(
    *,
    sim: Optional[Simulator] = None,
    cache_capacity: int = 256 * 1024,
    dc_a_prefix: str = "1.1.1.0/24",
    dc_b_prefix: str = "1.1.2.0/24",
    quiescence_timeout: float = 0.5,
    controller_config: Optional[ControllerConfig] = None,
    install_initial_routes: bool = True,
) -> REMigrationScenario:
    """Build the RE live-migration topology of Figure 6(a)."""
    sim = sim or Simulator()
    topology = Topology(sim)
    remote_gw = topology.add_host("remote-gw", "10.3.0.254")
    dc_a_host = topology.add_host("dc-a-apps", "1.1.1.254")
    dc_b_host = topology.add_host("dc-b-apps", "1.1.2.254")
    remote_switch = Switch(sim, "s-remote")
    wan = Switch(sim, "s-wan")
    dc_a_switch = Switch(sim, "s-dc-a")
    dc_b_switch = Switch(sim, "s-dc-b")
    encoder = REEncoder(sim, "re-encoder", cache_capacity=cache_capacity)
    decoder_a = REDecoder(sim, "re-decoder-a", cache_capacity=cache_capacity)
    decoder_b = REDecoder(sim, "re-decoder-b", cache_capacity=cache_capacity)
    for node in (remote_switch, wan, dc_a_switch, dc_b_switch, encoder, decoder_a, decoder_b):
        topology.add_node(node)
    topology.connect(remote_gw, remote_switch)
    topology.connect(remote_switch, encoder)
    topology.connect(encoder, wan, latency=5e-3)  # the WAN link has higher latency
    topology.connect(wan, decoder_a)
    topology.connect(wan, decoder_b)
    topology.connect(decoder_a, dc_a_switch)
    topology.connect(decoder_b, dc_b_switch)
    topology.connect(dc_a_switch, dc_a_host)
    topology.connect(dc_b_switch, dc_b_host)
    sdn = SDNController(sim, topology)
    config = controller_config or ControllerConfig(quiescence_timeout=quiescence_timeout)
    controller = MBController(sim, config)
    for middlebox in (encoder, decoder_a, decoder_b):
        controller.register(middlebox)
    northbound = NorthboundAPI(controller)
    scenario = REMigrationScenario(
        sim=sim,
        topology=topology,
        sdn=sdn,
        controller=controller,
        northbound=northbound,
        remote_gw=remote_gw,
        encoder=encoder,
        remote_switch=remote_switch,
        wan=wan,
        decoder_a=decoder_a,
        decoder_b=decoder_b,
        dc_a_switch=dc_a_switch,
        dc_b_switch=dc_b_switch,
        dc_a_host=dc_a_host,
        dc_b_host=dc_b_host,
        dc_a_prefix=dc_a_prefix,
        dc_b_prefix=dc_b_prefix,
    )
    if install_initial_routes:
        scenario.install_initial_routes()
        sim.run(until=sim.now + 0.05)
    return scenario


# =====================================================================================
# Transfer-guarantee scenarios
# =====================================================================================

#: Named TransferSpec configurations exercised by tests, examples, and the
#: guarantee benchmark — one per guarantee plus one per pipeline optimization.
GUARANTEE_SCENARIOS: Dict[str, TransferSpec] = {
    "no_guarantee": TransferSpec(guarantee=TransferGuarantee.NO_GUARANTEE),
    "loss_free": TransferSpec.default(),
    "order_preserving": TransferSpec(guarantee=TransferGuarantee.ORDER_PRESERVING),
    "loss_free_sequential": TransferSpec.sequential(),
    "loss_free_parallel": TransferSpec.parallel(window=8),
    "loss_free_batched": TransferSpec.batched(32),
    "loss_free_precopy": TransferSpec.precopy(),
    "no_guarantee_batched_early": TransferSpec(
        guarantee=TransferGuarantee.NO_GUARANTEE, batch_size=32, early_release=True
    ),
}


@dataclass
class GuaranteeScenarioResult:
    """Outcome of one :func:`run_guarantee_scenario` run."""

    scenario: TwoInstanceScenario
    record: OperationRecord
    spec: TransferSpec
    #: Packet updates recorded at the source before the move started.
    packets_before: int
    #: Packets injected at the source while the move was in flight.
    packets_during: int
    #: Packet updates recorded at the destination (plus any source leftovers)
    #: after the move finalized.
    packets_after: int
    #: Packets the destination queued behind an order-preserving hold.
    packets_held: int = 0
    #: Packets injected directly at the destination (``feed_destination`` runs).
    packets_at_destination: int = 0

    @property
    def updates_lost(self) -> int:
        """Per-flow packet counts that did not survive the transfer.

        Only meaningful for source-fed runs (``feed_destination=False``): a
        destination-fed packet that lands before the flow's state is installed
        is legitimately overwritten by the arriving chunk, so conservation is
        not expected to hold in that configuration — use ``packets_held`` and
        the middlebox counters instead.
        """
        return self.packets_before + self.packets_during - self.packets_after


def run_guarantee_scenario(
    spec: "TransferSpec | str | None" = "loss_free",
    *,
    flows: int = 20,
    packets_during_move: int = 40,
    packet_spacing: float = 0.001,
    quiescence_timeout: float = 0.2,
    feed_destination: bool = False,
) -> GuaranteeScenarioResult:
    """Move a populated monitor's state to a replica under one transfer spec.

    Builds the two-instance topology with passive monitors, warms instance 1
    with *flows* flows, starts ``moveInternal`` under *spec* (a
    :class:`TransferSpec` or a :data:`GUARANTEE_SCENARIOS` name), keeps
    traffic for the moved flows arriving at the source while the transfer is
    in flight, and accounts for every per-flow packet update afterwards.
    With ``feed_destination`` live packets also arrive at the destination
    during the move, exercising the order-preserving per-flow hold.

    The returned :class:`GuaranteeScenarioResult` makes the guarantee
    semantics observable: ``updates_lost`` is 0 under loss-free and
    order-preserving specs and typically positive under no-guarantee specs.
    """
    from ..net.packet import tcp_packet

    if isinstance(spec, str) and spec in GUARANTEE_SCENARIOS:
        resolved = GUARANTEE_SCENARIOS[spec]
    else:
        resolved = TransferSpec.parse(spec)
    scenario = build_two_instance_scenario(
        mb_factory=lambda sim, name: PassiveMonitor(sim, name),
        mb_names=("gmon-src", "gmon-dst"),
        quiescence_timeout=quiescence_timeout,
        install_default_route=False,
    )
    sim = scenario.sim
    src, dst = scenario.mb1, scenario.mb2

    def packet_for(index: int):
        return tcp_packet(
            f"10.0.{index % 3}.{index % 200 + 1}", "192.0.2.10", 1000 + index % flows, 80, b"payload"
        )

    for index in range(flows):
        sim.schedule(0.0005 * index, src.receive, packet_for(index), 1)
    sim.run(until=sim.now + 0.0005 * flows + 0.05)
    packets_before = sum(rec.packets for _, rec in src.report_store.items())

    handle = scenario.move_with_spec(None, resolved)
    # Keep traffic arriving for the *moved* flows while the transfer runs, so
    # the source raises re-process events the guarantee policy must handle.
    for index in range(packets_during_move):
        sim.schedule(packet_spacing * index, src.receive, packet_for(index % flows), 1)
        if feed_destination:
            # Feed every moved flow at quarter-spacing so each flow's
            # install→release hold window (which opens at a chunk-order- and
            # store-layout-dependent instant) deterministically sees at least
            # one destination packet, whatever order the chunks stream in.
            for quarter in range(4):
                offset = packet_spacing * index + quarter * packet_spacing / 4
                for flow in range(flows):
                    sim.schedule(offset + flow * 1e-6, dst.receive, packet_for(flow), 1)
    sim.run_until(handle.finalized, limit=1000)
    sim.run(until=sim.now + 2 * quiescence_timeout + 0.5)

    packets_after = sum(rec.packets for _, rec in dst.report_store.items())
    packets_after += sum(rec.packets for _, rec in src.report_store.items())
    return GuaranteeScenarioResult(
        scenario=scenario,
        record=handle.record,
        spec=resolved,
        packets_before=packets_before,
        packets_during=packets_during_move,
        packets_after=packets_after,
        packets_held=dst.counters.packets_held,
        packets_at_destination=packets_during_move if feed_destination else 0,
    )
