"""Federation overseer control application (multi-domain fleet reporting).

Single-controller applications talk to one :class:`~repro.core.northbound.NorthboundAPI`;
a federated deployment has one controller *per domain* plus the gossip layer
tying them together (:mod:`repro.federation`).  The overseer is the control
application for that layer: it waits for the gossip views of every live
domain to converge, audits the outcome of any takeovers, and folds the
per-domain controller counters into a single fleet-wide report via
:meth:`~repro.core.stats.ControllerStats.merge`.

The report answers the questions an operator asks after a domain outage:

* **Did the views converge?** (``converged`` / ``polls``) — membership,
  liveness, and flow ownership agree across every surviving domain.
* **Who died, and who adopted their instances?** (``dead_domains`` /
  ``takeovers``) — exactly one live domain must have adopted each dead one.
* **Where is everything now?** (``instances`` / ``ownership``) — the
  per-domain instance rosters and the flow-ownership token counts from the
  converged directory.
* **What did it cost?** (``fleet``) — the merged controller counters
  (messages, operations, precopy overhead) across the whole federation.
"""

from __future__ import annotations

from typing import Dict, Generator, List

from ..net.simulator import Simulator
from .base import ControlApplication


class FederationOverseerApp(ControlApplication):
    """Wait for a federation to converge, then report fleet-wide state."""

    name = "federation-overseer"

    def __init__(
        self,
        sim: Simulator,
        federation,
        *,
        poll_interval: float = 1e-3,
        settle_limit: float = 1.0,
    ) -> None:
        # The overseer spans domains, so it has no single northbound API.
        super().__init__(sim, northbound=None)
        self.federation = federation
        self.poll_interval = poll_interval
        self.settle_limit = settle_limit

    # -- audit helpers -----------------------------------------------------------------------------

    def takeover_map(self) -> Dict[str, str]:
        """Dead domain -> the live domain that adopted its instances."""
        adoptions: Dict[str, str] = {}
        for domain in self.federation.live_domains():
            for dead in domain.takeovers:
                adoptions[dead] = domain.name
        return adoptions

    def dead_domains(self) -> List[str]:
        """Domains that crashed (or were declared dead by the survivors)."""
        return sorted(
            name for name, domain in self.federation.domains.items() if not domain.alive
        )

    def instance_rosters(self) -> Dict[str, List[str]]:
        """Per-live-domain sorted instance names (post-takeover placement)."""
        return {
            domain.name: sorted(domain.controller.middlebox_names())
            for domain in self.federation.live_domains()
        }

    def ownership_counts(self) -> Dict[str, int]:
        """Flow-ownership token counts per owning domain, from a converged view."""
        live = self.federation.live_domains()
        if not live:
            return {}
        view = live[0].directory
        return {domain.name: len(view.tokens_owned_by(domain.name)) for domain in live}

    # -- application body --------------------------------------------------------------------------

    def steps(self) -> Generator:
        self._log("waiting for gossip views to converge")
        deadline = self.sim.now + self.settle_limit
        polls = 0
        while not self.federation.converged() and self.sim.now < deadline:
            polls += 1
            yield self.sim.timeout(self.poll_interval)
        converged = self.federation.converged()
        self._log(f"views {'converged' if converged else 'DID NOT converge'} after {polls} polls")

        adoptions = self.takeover_map()
        for dead, adopter in sorted(adoptions.items()):
            self._log(f"domain '{dead}' was taken over by '{adopter}'")

        self.report.details.update(
            {
                "converged": converged,
                "polls": polls,
                "live_domains": sorted(domain.name for domain in self.federation.live_domains()),
                "dead_domains": self.dead_domains(),
                "takeovers": adoptions,
                "instances": self.instance_rosters(),
                "ownership": self.ownership_counts(),
                "fleet": self.federation.merged_stats().summary(),
            }
        )
        return self.report
