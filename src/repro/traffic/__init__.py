"""Workloads: synthetic trace generators, distributions, and replay."""

from .distributions import FlowDurationModel, FlowSizeModel, empirical_cdf, fraction_exceeding, quantile
from .generators import (
    FlowSpec,
    constant_rate_trace,
    datacenter_flow_durations,
    datacenter_trace,
    enterprise_cloud_trace,
    http_flow_records,
    raw_flow_records,
    redundancy_trace,
    scan_trace,
)
from .records import Trace, TraceRecord
from .replay import ReplayStats, TraceReplayer, replay_trace_through

__all__ = [
    "FlowDurationModel",
    "FlowSizeModel",
    "empirical_cdf",
    "fraction_exceeding",
    "quantile",
    "FlowSpec",
    "constant_rate_trace",
    "datacenter_flow_durations",
    "datacenter_trace",
    "enterprise_cloud_trace",
    "http_flow_records",
    "raw_flow_records",
    "redundancy_trace",
    "scan_trace",
    "Trace",
    "TraceRecord",
    "ReplayStats",
    "TraceReplayer",
    "replay_trace_through",
]
