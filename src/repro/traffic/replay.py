"""Trace replay onto the simulated network.

A :class:`TraceReplayer` turns trace records back into packets and injects
them on the simulated clock, either directly into a node (a middlebox or a
switch port — the equivalent of a tap feeding a middlebox) or via a host's
``send`` so the packets traverse the routed topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..net.packet import Packet
from ..net.simulator import Simulator
from ..net.topology import Host, Node
from .records import Trace, TraceRecord


@dataclass
class ReplayStats:
    """Counters describing one replay."""

    injected: int = 0
    bytes: int = 0
    first_time: float = 0.0
    last_time: float = 0.0


class TraceReplayer:
    """Schedules the packets of a trace for injection on the simulated clock."""

    def __init__(
        self,
        sim: Simulator,
        trace: Trace,
        inject: Callable[[Packet], None],
        *,
        start_at: float = 0.0,
        speedup: float = 1.0,
        limit: Optional[int] = None,
    ) -> None:
        if speedup <= 0:
            raise ValueError("speedup must be positive")
        self.sim = sim
        self.trace = trace
        self.inject = inject
        self.start_at = start_at
        self.speedup = speedup
        self.limit = limit
        self.stats = ReplayStats()

    # -- convenience constructors ------------------------------------------------------------------

    @classmethod
    def into_node(
        cls,
        sim: Simulator,
        trace: Trace,
        node: Node,
        *,
        in_port: int = 1,
        start_at: float = 0.0,
        speedup: float = 1.0,
        limit: Optional[int] = None,
    ) -> "TraceReplayer":
        """Replay directly into a node's receive path (tap-style injection)."""
        return cls(
            sim,
            trace,
            lambda packet: node.receive(packet, in_port),
            start_at=start_at,
            speedup=speedup,
            limit=limit,
        )

    @classmethod
    def via_host(
        cls,
        sim: Simulator,
        trace: Trace,
        host: Host,
        *,
        start_at: float = 0.0,
        speedup: float = 1.0,
        limit: Optional[int] = None,
    ) -> "TraceReplayer":
        """Replay by sending from a host so packets follow installed routes."""
        return cls(sim, trace, host.send, start_at=start_at, speedup=speedup, limit=limit)

    # -- scheduling ---------------------------------------------------------------------------------

    def schedule(self) -> int:
        """Schedule every record for injection; returns the number scheduled."""
        records = self.trace.records[: self.limit] if self.limit is not None else self.trace.records
        if not records:
            return 0
        base = records[0].time
        for record in records:
            at = self.start_at + (record.time - base) / self.speedup
            self.sim.schedule_at(max(at, self.sim.now), self._inject_record, record)
        self.stats.first_time = self.start_at
        self.stats.last_time = self.start_at + (records[-1].time - base) / self.speedup
        return len(records)

    def _inject_record(self, record: TraceRecord) -> None:
        packet = record.to_packet()
        packet.created_at = self.sim.now
        self.stats.injected += 1
        self.stats.bytes += packet.wire_size
        self.inject(packet)


def replay_trace_through(
    sim: Simulator,
    trace: Trace,
    node: Node,
    *,
    in_port: int = 1,
    speedup: float = 1.0,
    run: bool = True,
) -> ReplayStats:
    """Convenience: replay a whole trace into *node* and (optionally) run the simulator."""
    replayer = TraceReplayer.into_node(sim, trace, node, in_port=in_port, speedup=speedup)
    replayer.schedule()
    if run:
        sim.run(until=replayer.stats.last_time + 1.0)
    return replayer.stats
