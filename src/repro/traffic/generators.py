"""Synthetic workload generators.

The paper evaluates OpenMB with three captured traces: enterprise traffic to
cloud providers, a university data-center trace, and a high-redundancy campus
trace.  Captured traces are not redistributable, so these generators produce
synthetic equivalents that preserve the properties the evaluation relies on:

* :func:`enterprise_cloud_trace` — a mix of HTTP flows to a "cloud" subnet and
  other (non-HTTP) flows, each a full TCP conversation (handshake, requests,
  responses, close), so an IDS sees realistic connection lifecycles and a
  monitor sees realistic per-flow counters.
* :func:`datacenter_flow_durations` / :func:`datacenter_trace` — flows whose
  durations follow a heavy-tailed distribution with ≈9 % of flows longer than
  1500 s (Figure 8).
* :func:`redundancy_trace` — packets whose payloads repeat content blocks with
  a configurable redundancy ratio, exercising the RE encoder/decoder.
* :func:`scan_trace` — one source probing many destinations (IDS scan
  detection).
* :func:`constant_rate_trace` — packets at a fixed aggregate rate across a set
  of flows (used for the event-generation experiments of Figure 9c/d).

All generators are deterministic given their ``seed``.  Alternatively a
pre-seeded ``numpy`` generator can be threaded through several calls via the
``rng`` parameter — the idiom the chaos harness uses to derive *every* random
decision of a scenario from one master seed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..net.packet import ACK, FIN, SYN
from .distributions import FlowDurationModel, FlowSizeModel
from .records import Trace, TraceRecord

#: Maximum payload bytes carried by one generated packet.
MAX_SEGMENT = 512


@dataclass
class FlowSpec:
    """Specification of one synthetic TCP flow."""

    client: str
    server: str
    client_port: int
    server_port: int
    start: float
    duration: float
    #: For HTTP flows: (uri, response_bytes) per request.  Empty for raw flows.
    requests: List[Tuple[str, int]] = field(default_factory=list)
    #: For non-HTTP flows: total application bytes in each direction.
    upload_bytes: int = 0
    download_bytes: int = 0

    @property
    def is_http(self) -> bool:
        return bool(self.requests)


def _chunks(total: int, chunk: int = MAX_SEGMENT) -> List[int]:
    """Split *total* bytes into segment sizes."""
    if total <= 0:
        return []
    full, rest = divmod(total, chunk)
    sizes = [chunk] * full
    if rest:
        sizes.append(rest)
    return sizes


def http_flow_records(spec: FlowSpec, *, close: bool = True) -> List[TraceRecord]:
    """Expand an HTTP flow spec into its packet records (both directions)."""
    records: List[TraceRecord] = []
    c, s = spec.client, spec.server
    cp, sp = spec.client_port, spec.server_port
    events = max(1, 3 + sum(2 + len(_chunks(size)) for _, size in spec.requests) + (3 if close else 0))
    step = spec.duration / events if spec.duration > 0 else 1e-3
    t = spec.start

    def add(src, dst, tp_src, tp_dst, payload=b"", flags=()):
        nonlocal t
        records.append(
            TraceRecord(
                time=t, nw_src=src, nw_dst=dst, tp_src=tp_src, tp_dst=tp_dst, payload=payload, flags=list(flags)
            )
        )
        t += step

    # three-way handshake
    add(c, s, cp, sp, flags=[SYN])
    add(s, c, sp, cp, flags=[SYN, ACK])
    add(c, s, cp, sp, flags=[ACK])
    # requests / responses
    for uri, response_size in spec.requests:
        request = f"GET {uri} HTTP/1.1\r\nHost: {s}\r\nUser-Agent: repro\r\n\r\n".encode()
        add(c, s, cp, sp, payload=request, flags=[ACK])
        header = b"HTTP/1.1 200 OK\r\nContent-Type: application/octet-stream\r\n\r\n"
        first = True
        for size in _chunks(response_size):
            body = bytes((size * b"d"))
            payload = header + body if first else body
            add(s, c, sp, cp, payload=payload, flags=[ACK])
            first = False
        if first:
            add(s, c, sp, cp, payload=header, flags=[ACK])
    if close:
        add(c, s, cp, sp, flags=[FIN, ACK])
        add(s, c, sp, cp, flags=[FIN, ACK])
        add(c, s, cp, sp, flags=[ACK])
    return records


def raw_flow_records(spec: FlowSpec, *, close: bool = True) -> List[TraceRecord]:
    """Expand a non-HTTP flow spec into packet records (generic TCP data)."""
    records: List[TraceRecord] = []
    c, s = spec.client, spec.server
    cp, sp = spec.client_port, spec.server_port
    up = _chunks(spec.upload_bytes)
    down = _chunks(spec.download_bytes)
    events = max(1, 3 + len(up) + len(down) + (3 if close else 0))
    step = spec.duration / events if spec.duration > 0 else 1e-3
    t = spec.start

    def add(src, dst, tp_src, tp_dst, payload=b"", flags=()):
        nonlocal t
        records.append(
            TraceRecord(
                time=t, nw_src=src, nw_dst=dst, tp_src=tp_src, tp_dst=tp_dst, payload=payload, flags=list(flags)
            )
        )
        t += step

    add(c, s, cp, sp, flags=[SYN])
    add(s, c, sp, cp, flags=[SYN, ACK])
    add(c, s, cp, sp, flags=[ACK])
    for upload, download in itertools.zip_longest(up, down):
        if upload:
            add(c, s, cp, sp, payload=b"u" * upload, flags=[ACK])
        if download:
            add(s, c, sp, cp, payload=b"v" * download, flags=[ACK])
    if close:
        add(c, s, cp, sp, flags=[FIN, ACK])
        add(s, c, sp, cp, flags=[FIN, ACK])
        add(c, s, cp, sp, flags=[ACK])
    return records


def enterprise_cloud_trace(
    *,
    http_flows: int = 100,
    other_flows: int = 40,
    duration: float = 60.0,
    client_subnet: str = "10.1.1",
    cloud_subnet: str = "172.16.1",
    mean_requests: float = 2.0,
    seed: int = 1,
    leave_open_fraction: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> Trace:
    """Synthetic equivalent of the paper's campus-to-cloud trace.

    ``leave_open_fraction`` flows are generated without a close, so a fraction
    of connections remain in progress at the end of the trace (useful for
    migration experiments where live flows must keep working).  ``rng``
    overrides ``seed`` with an externally threaded generator.
    """
    rng = rng if rng is not None else np.random.default_rng(seed)
    size_model = FlowSizeModel()
    records: List[TraceRecord] = []
    specs: List[FlowSpec] = []
    for index in range(http_flows):
        client = f"{client_subnet}.{index % 200 + 1}"
        server = f"{cloud_subnet}.{index % 20 + 1}"
        n_requests = max(1, int(rng.poisson(mean_requests)))
        sizes = size_model.sample(n_requests, rng)
        spec = FlowSpec(
            client=client,
            server=server,
            client_port=20_000 + index,
            server_port=80,
            start=float(rng.uniform(0, duration * 0.6)),
            duration=float(rng.uniform(duration * 0.05, duration * 0.4)),
            requests=[(f"/object/{index}/{i}", int(min(size, 4 * MAX_SEGMENT))) for i, size in enumerate(sizes)],
        )
        specs.append(spec)
        close = rng.random() >= leave_open_fraction
        records.extend(http_flow_records(spec, close=close))
    for index in range(other_flows):
        client = f"{client_subnet}.{index % 200 + 1}"
        server = f"{cloud_subnet}.{index % 20 + 101}"
        port = int(rng.choice([22, 443, 25, 3306]))
        spec = FlowSpec(
            client=client,
            server=server,
            client_port=40_000 + index,
            server_port=port,
            start=float(rng.uniform(0, duration * 0.6)),
            duration=float(rng.uniform(duration * 0.05, duration * 0.5)),
            upload_bytes=int(size_model.sample(1, rng)[0] // 4),
            download_bytes=int(size_model.sample(1, rng)[0]),
        )
        specs.append(spec)
        close = rng.random() >= leave_open_fraction
        records.extend(raw_flow_records(spec, close=close))
    return Trace.from_records(
        records,
        kind="enterprise-cloud",
        http_flows=http_flows,
        other_flows=other_flows,
        duration=duration,
        seed=seed,
        client_subnet=client_subnet,
        cloud_subnet=cloud_subnet,
    )


def datacenter_flow_durations(
    count: int = 5000,
    *,
    seed: int = 3,
    model: Optional[FlowDurationModel] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Flow durations for the data-center workload (Figure 8)."""
    model = model or FlowDurationModel()
    rng = rng if rng is not None else np.random.default_rng(seed)
    return model.sample(count, rng)


def datacenter_trace(
    *,
    flows: int = 200,
    seed: int = 3,
    client_subnet: str = "10.2.1",
    server_subnet: str = "10.2.2",
    model: Optional[FlowDurationModel] = None,
    packets_per_flow: int = 6,
    rng: Optional[np.random.Generator] = None,
) -> Trace:
    """A packet trace whose flow durations follow the data-center model.

    Each flow contributes a handshake, sparse data packets spread across its
    duration, and a close, so "when does the last flow finish" questions (the
    held-up-middlebox experiment) can be asked of the trace directly.
    """
    durations = datacenter_flow_durations(flows, seed=seed, model=model, rng=rng)
    rng = rng if rng is not None else np.random.default_rng(seed + 1)
    records: List[TraceRecord] = []
    for index, flow_duration in enumerate(durations):
        client = f"{client_subnet}.{index % 250 + 1}"
        server = f"{server_subnet}.{index % 50 + 1}"
        spec = FlowSpec(
            client=client,
            server=server,
            client_port=30_000 + index,
            server_port=80,
            start=float(rng.uniform(0.0, 10.0)),
            duration=float(flow_duration),
            requests=[(f"/dc/{index}/{i}", MAX_SEGMENT) for i in range(max(1, packets_per_flow // 3))],
        )
        records.extend(http_flow_records(spec))
    return Trace.from_records(
        records,
        kind="datacenter",
        flows=flows,
        seed=seed,
        durations=[float(value) for value in durations],
    )


def redundancy_trace(
    *,
    packets: int = 500,
    payload_bytes: int = 1024,
    redundancy: float = 0.5,
    unique_blocks: int = 32,
    client_subnet: str = "10.3.1",
    server_subnet: str = "1.1.1",
    flows: int = 10,
    interval: float = 0.002,
    seed: int = 5,
    rng: Optional[np.random.Generator] = None,
) -> Trace:
    """Packets whose payloads repeat earlier content with probability *redundancy*.

    Payloads are assembled from 64-byte blocks: each block is drawn from a small
    pool of repeating blocks with probability ``redundancy`` and is otherwise
    fresh random content, giving the RE encoder approximately that fraction of
    encodable bytes once the cache has warmed up.
    """
    rng = rng if rng is not None else np.random.default_rng(seed)
    block = 64
    pool = [rng.integers(0, 256, size=block, dtype=np.uint8).tobytes() for _ in range(unique_blocks)]
    records: List[TraceRecord] = []
    fresh_counter = itertools.count()
    for index in range(packets):
        flow = index % flows
        blocks: List[bytes] = []
        for _ in range(max(1, payload_bytes // block)):
            if rng.random() < redundancy:
                blocks.append(pool[int(rng.integers(0, unique_blocks))])
            else:
                marker = next(fresh_counter).to_bytes(8, "big")
                filler = rng.integers(0, 256, size=block - 8, dtype=np.uint8).tobytes()
                blocks.append(marker + filler)
        records.append(
            TraceRecord(
                time=index * interval,
                nw_src=f"{client_subnet}.{flow + 1}",
                nw_dst=f"{server_subnet}.{flow % 25 + 1}",
                tp_src=50_000 + flow,
                tp_dst=80,
                payload=b"".join(blocks),
                flags=[ACK],
            )
        )
    return Trace.from_records(
        records,
        kind="redundancy",
        packets=packets,
        redundancy=redundancy,
        seed=seed,
        server_subnet=server_subnet,
    )


def scan_trace(
    *,
    scanner: str = "10.9.9.9",
    targets: int = 50,
    target_subnet: str = "10.4.1",
    port: int = 22,
    interval: float = 0.01,
) -> Trace:
    """One source probing many destinations (SYN only) — triggers IDS scan detection."""
    records = [
        TraceRecord(
            time=index * interval,
            nw_src=scanner,
            nw_dst=f"{target_subnet}.{index + 1}",
            tp_src=60_000 + index,
            tp_dst=port,
            flags=[SYN],
        )
        for index in range(targets)
    ]
    return Trace.from_records(records, kind="scan", scanner=scanner, targets=targets)


def constant_rate_trace(
    *,
    rate: float = 1000.0,
    duration: float = 1.0,
    flows: int = 250,
    client_subnet: str = "10.5",
    server: str = "192.0.2.20",
    payload_bytes: int = 200,
    seed: int = 9,
    rng: Optional[np.random.Generator] = None,
) -> Trace:
    """Packets at a fixed aggregate rate, spread round-robin over *flows* flows.

    Used by the Figure 9c/d experiments: the number of re-process events raised
    during a move is driven by how many packets arrive for the moved flows while
    the transfer window is open, i.e. by the packet rate.
    """
    rng = rng if rng is not None else np.random.default_rng(seed)
    total = int(rate * duration)
    interval = 1.0 / rate if rate > 0 else duration
    records: List[TraceRecord] = []
    for index in range(total):
        flow = index % flows
        records.append(
            TraceRecord(
                time=index * interval,
                nw_src=f"{client_subnet}.{flow // 250 + 1}.{flow % 250 + 1}",
                nw_dst=server,
                tp_src=1024 + flow,
                tp_dst=80,
                payload=bytes(rng.integers(0, 256, size=payload_bytes, dtype=np.uint8)),
                flags=[ACK],
            )
        )
    return Trace.from_records(
        records, kind="constant-rate", rate=rate, duration=duration, flows=flows, seed=seed
    )
