"""Trace records: the workload representation used throughout the evaluation.

A :class:`Trace` is an ordered list of :class:`TraceRecord` entries, each of
which describes one packet (timestamp, five-tuple, flags, payload).  Traces
are produced by the generators in :mod:`repro.traffic.generators` (our
synthetic stand-ins for the paper's captured enterprise, data-center, and
high-redundancy traces) and consumed by :mod:`repro.traffic.replay`, which
turns records back into packets on the simulated network.

Traces can be saved to and loaded from JSON-lines files so benchmark workloads
are reproducible artifacts rather than in-memory accidents.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List

from ..core.flowspace import PROTO_TCP, FlowKey
from ..net.packet import Packet


@dataclass
class TraceRecord:
    """One packet in a trace."""

    time: float
    nw_src: str
    nw_dst: str
    tp_src: int
    tp_dst: int
    nw_proto: int = PROTO_TCP
    payload: bytes = b""
    flags: List[str] = field(default_factory=list)
    seq: int = 0

    def flow_key(self) -> FlowKey:
        return FlowKey(self.nw_proto, self.nw_src, self.nw_dst, self.tp_src, self.tp_dst)

    def to_packet(self) -> Packet:
        """Materialise the record as a packet (created_at is set at injection time)."""
        return Packet(
            nw_src=self.nw_src,
            nw_dst=self.nw_dst,
            nw_proto=self.nw_proto,
            tp_src=self.tp_src,
            tp_dst=self.tp_dst,
            payload=self.payload,
            flags=frozenset(self.flags),
            seq=self.seq,
        )

    def to_json(self) -> str:
        return json.dumps(
            {
                "time": self.time,
                "nw_src": self.nw_src,
                "nw_dst": self.nw_dst,
                "tp_src": self.tp_src,
                "tp_dst": self.tp_dst,
                "nw_proto": self.nw_proto,
                "payload": base64.b64encode(self.payload).decode("ascii"),
                "flags": list(self.flags),
                "seq": self.seq,
            },
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "TraceRecord":
        data = json.loads(text)
        return cls(
            time=float(data["time"]),
            nw_src=data["nw_src"],
            nw_dst=data["nw_dst"],
            tp_src=int(data["tp_src"]),
            tp_dst=int(data["tp_dst"]),
            nw_proto=int(data.get("nw_proto", PROTO_TCP)),
            payload=base64.b64decode(data.get("payload", "")),
            flags=list(data.get("flags", [])),
            seq=int(data.get("seq", 0)),
        )


@dataclass
class Trace:
    """An ordered packet trace plus free-form metadata."""

    records: List[TraceRecord] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.records.sort(key=lambda record: record.time)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    @property
    def duration(self) -> float:
        """Time between the first and last packet (0.0 for empty traces)."""
        if not self.records:
            return 0.0
        return self.records[-1].time - self.records[0].time

    def total_bytes(self) -> int:
        return sum(len(record.payload) for record in self.records)

    def flows(self) -> List[FlowKey]:
        """Distinct bidirectional flows in the trace, in first-seen order."""
        seen: Dict[FlowKey, None] = {}
        for record in self.records:
            seen.setdefault(record.flow_key().bidirectional(), None)
        return list(seen)

    def flow_count(self) -> int:
        return len(self.flows())

    def filter(self, predicate) -> "Trace":
        """A new trace containing only the records for which *predicate* is true."""
        return Trace(records=[record for record in self.records if predicate(record)], metadata=dict(self.metadata))

    def merged_with(self, other: "Trace") -> "Trace":
        """A new trace interleaving this trace and *other* by timestamp."""
        return Trace(records=list(self.records) + list(other.records), metadata=dict(self.metadata))

    def time_shifted(self, offset: float) -> "Trace":
        """A copy of the trace with every timestamp shifted by *offset* seconds."""
        shifted = [
            TraceRecord(
                time=record.time + offset,
                nw_src=record.nw_src,
                nw_dst=record.nw_dst,
                tp_src=record.tp_src,
                tp_dst=record.tp_dst,
                nw_proto=record.nw_proto,
                payload=record.payload,
                flags=list(record.flags),
                seq=record.seq,
            )
            for record in self.records
        ]
        return Trace(records=shifted, metadata=dict(self.metadata))

    # -- persistence ----------------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the trace as JSON lines (first line: metadata)."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps({"metadata": self.metadata}) + "\n")
            for record in self.records:
                handle.write(record.to_json() + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        path = Path(path)
        records: List[TraceRecord] = []
        metadata: Dict[str, object] = {}
        with path.open("r", encoding="utf-8") as handle:
            first = handle.readline()
            if first:
                header = json.loads(first)
                metadata = dict(header.get("metadata", {}))
            for line in handle:
                line = line.strip()
                if line:
                    records.append(TraceRecord.from_json(line))
        return cls(records=records, metadata=metadata)

    @classmethod
    def from_records(cls, records: Iterable[TraceRecord], **metadata: object) -> "Trace":
        return cls(records=list(records), metadata=dict(metadata))
