"""Flow size and duration distributions for synthetic workloads.

The paper's Figure 8 plots the CDF of HTTP flow durations in a university
data-center trace and observes that roughly 9 % of flows take more than
1500 seconds to complete — the fact that makes "wait for existing flows to
drain" an unacceptable scale-down strategy.  :class:`FlowDurationModel`
reproduces that shape with a mixture of a log-normal body (short transactional
flows) and a heavy Pareto tail (long-lived flows), with the tail weight chosen
so the >1500 s fraction is configurable.

Flow sizes follow a log-normal distribution, the standard empirical shape for
data-center flow sizes (Benson et al., IMC 2010, which the paper cites for its
data-center trace).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass
class FlowDurationModel:
    """A mixture model for flow durations (seconds)."""

    #: Median of the short-flow (log-normal) component.
    body_median: float = 8.0
    #: Sigma of the short-flow component (log-space).
    body_sigma: float = 1.2
    #: Fraction of flows drawn from the heavy tail.
    tail_fraction: float = 0.14
    #: Pareto shape of the tail (smaller = heavier).
    tail_alpha: float = 1.1
    #: Scale (minimum) of the tail component, seconds.  Together with the tail
    #: fraction this puts roughly 9 % of flows above 1500 s, matching Figure 8.
    tail_scale: float = 1000.0

    #: Cap on any single flow duration (seconds); a day, so the heavy tail stays
    #: heavy without producing physically implausible multi-week flows.
    max_duration: float = 86_400.0

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw *count* flow durations."""
        from_tail = rng.random(count) < self.tail_fraction
        body = rng.lognormal(mean=np.log(self.body_median), sigma=self.body_sigma, size=count)
        tail = self.tail_scale * (1.0 + rng.pareto(self.tail_alpha, size=count))
        return np.minimum(np.where(from_tail, tail, body), self.max_duration)

    def fraction_exceeding(self, threshold: float, count: int = 200_000, seed: int = 7) -> float:
        """Monte-Carlo estimate of the fraction of flows longer than *threshold*."""
        rng = np.random.default_rng(seed)
        samples = self.sample(count, rng)
        return float(np.mean(samples > threshold))


@dataclass
class FlowSizeModel:
    """Log-normal model for flow sizes in bytes."""

    median_bytes: float = 12_000.0
    sigma: float = 1.6
    minimum_bytes: int = 200

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        sizes = rng.lognormal(mean=np.log(self.median_bytes), sigma=self.sigma, size=count)
        return np.maximum(sizes, self.minimum_bytes).astype(np.int64)


def empirical_cdf(values: Sequence[float]) -> tuple:
    """Return (sorted values, cumulative probabilities) for plotting a CDF."""
    ordered = np.sort(np.asarray(values, dtype=float))
    if ordered.size == 0:
        return np.array([]), np.array([])
    probabilities = np.arange(1, ordered.size + 1) / ordered.size
    return ordered, probabilities


def quantile(values: Sequence[float], q: float) -> float:
    """The *q*-quantile of *values* (0 <= q <= 1)."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        return 0.0
    return float(np.quantile(array, q))


def fraction_exceeding(values: Sequence[float], threshold: float) -> float:
    """Fraction of *values* strictly greater than *threshold*."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        return 0.0
    return float(np.mean(array > threshold))
