"""Runtime selection: one knob choosing deterministic simulation or wall clock.

Everything that builds a controller stack takes a scheduler object; this
module decides which implementation that object is.  The default is — and
must remain — the deterministic :class:`~repro.net.simulator.Simulator`:
golden traces, the chaos matrix, and every regression fingerprint depend on
its bit-for-bit reproducibility.  The :class:`RealtimeRuntime` is opt-in,
for benchmarks and soak tests that need real ops/sec.

    runtime = RuntimeConfig(mode="realtime", time_scale=0.5).create()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.errors import ValidationError

#: Valid values for :attr:`RuntimeConfig.mode`.
RUNTIME_MODES = ("simulated", "realtime")


@dataclass(frozen=True)
class RuntimeConfig:
    """Declarative choice of runtime implementation.

    ``mode``
        ``"simulated"`` (default; deterministic discrete-event kernel) or
        ``"realtime"`` (asyncio on the monotonic wall clock).
    ``time_scale``
        Realtime only: wall seconds per runtime second.  ``0.5`` runs
        scenarios at double speed (half the wall time), ``2.0`` at half
        speed; ignored in simulated mode, where time is free.
    ``min_sleep``
        Realtime only: CPU costs below this (in runtime seconds) accumulate
        as debt and are slept in one chunk — the OS timer cannot honour a
        40 µs sleep, so sub-granularity costs are coalesced.
    ``poll_interval``
        Realtime only: idle-probe period for quiescence detection in
        ``run()`` / ``run_until()``.
    """

    mode: str = "simulated"
    time_scale: float = 1.0
    min_sleep: float = 1e-3
    poll_interval: float = 2e-3

    def __post_init__(self) -> None:
        if self.mode not in RUNTIME_MODES:
            raise ValidationError(
                f"unknown runtime mode {self.mode!r}; expected one of {RUNTIME_MODES}"
            )
        if self.time_scale <= 0:
            raise ValidationError(f"time_scale must be > 0, got {self.time_scale}")
        if self.min_sleep < 0 or self.poll_interval <= 0:
            raise ValidationError("min_sleep must be >= 0 and poll_interval > 0")

    def create(self):
        """Instantiate the configured runtime."""
        if self.mode == "simulated":
            from ..net.simulator import Simulator

            return Simulator()
        from .realtime import RealtimeRuntime

        return RealtimeRuntime(
            time_scale=self.time_scale,
            min_sleep=self.min_sleep,
            poll_interval=self.poll_interval,
        )


def create_runtime(config: Optional[RuntimeConfig] = None):
    """Instantiate a runtime from *config* (default: deterministic simulator)."""
    return (config or RuntimeConfig()).create()


__all__ = ["RUNTIME_MODES", "RuntimeConfig", "create_runtime"]
