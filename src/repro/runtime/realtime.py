"""Wall-clock asyncio runtime implementing the Simulator scheduling interface.

:class:`RealtimeRuntime` runs the same controller/channel/middlebox code the
deterministic :class:`~repro.net.simulator.Simulator` runs, but on real
concurrency:

* delays are **monotonic-clock sleeps** (``time.monotonic`` via the asyncio
  event loop) instead of tick arithmetic — ``now`` is scaled wall time since
  runtime construction;
* every :meth:`RealtimeRuntime.lane` — one controller shard's CPU, one
  direction of a control channel — is backed by **its own asyncio task**
  that executes its work strictly in order, so shards genuinely run
  concurrently with each other instead of sharing one event queue;
* every :meth:`RealtimeRuntime.process` generator drives an asyncio task;
* :class:`RealtimeFuture` completion is **thread-safe**: a future completed
  from a foreign thread marshals its done-callbacks onto the runtime's event
  loop instead of running them on the completing thread.

Scheduling-order guarantees are preserved where the components rely on them:
callbacks scheduled for the same runtime time fire in scheduling order (the
timer heap tie-breaks on a sequence counter, exactly like the simulator's),
and a lane's work never interleaves with itself.  *Timings*, of course,
differ — which is why the differential harness
(:mod:`repro.testing.equivalence`) compares observable outcomes only.

Two fidelity knobs (see :class:`~repro.runtime.config.RuntimeConfig`):
``time_scale`` stretches/compresses runtime seconds into wall seconds, and
``min_sleep`` coalesces sub-granularity CPU costs (the event loop cannot
sleep 40 µs accurately; costs accumulate as debt and are paid in chunks the
OS timer can actually honour).
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Generator, List, Optional, Tuple

from ..core.errors import SimulationError, StuckFutureError
from ..net.simulator import Future, ScheduledCall, all_of
from .interface import Runtime


class RealtimeFuture(Future):
    """A :class:`~repro.net.simulator.Future` with thread-safe completion.

    Completion (``succeed``/``fail``) may race between threads: the state
    transition happens under a lock exactly once, and when the completing
    thread is not the runtime's owner thread the done-callbacks are marshalled
    onto the runtime's event loop instead of running on the foreign thread —
    callbacks therefore always observe runtime state from the loop's thread.
    """

    def __init__(self, runtime: "RealtimeRuntime", name: str = "") -> None:
        super().__init__(runtime, name=name)
        self._lock = threading.RLock()

    def _finish(self, result: Any, exception: Optional[BaseException]) -> None:
        with self._lock:
            if self._done:
                raise SimulationError(f"future {self.name or id(self)} completed twice")
            self._done = True
            self._result = result
            self._exception = exception
            callbacks, self._callbacks = self._callbacks, []
        runtime: "RealtimeRuntime" = self.sim

        def fire() -> None:
            for callback in callbacks:
                callback(self)

        if runtime._on_owner_thread():
            fire()
        else:
            runtime._call_in_loop(fire)

    def add_done_callback(self, callback: Callable[[Future], None]) -> None:
        """Register *callback* (thread-safe); runs immediately if already done."""
        with self._lock:
            if not self._done:
                self._callbacks.append(callback)
                return
        callback(self)


class RealtimeLane:
    """One serialisation point backed by a dedicated asyncio task.

    A lane plays two roles, mirroring :class:`~repro.net.simulator.SimulatedLane`:

    * **CPU** (:meth:`submit`): work items queue FIFO; the lane's task sleeps
      for each item's cost (coalesced through the runtime's ``min_sleep``
      debt) and then runs it.  Two lanes never block each other — this is the
      "one asyncio task per controller shard" concurrency.
    * **wire** (:meth:`reserve` + :meth:`dispatch_at`): occupancy is tracked
      by watermark arithmetic on the wall clock, and deliveries are dispatched
      by the lane's task in deadline order with FIFO tie-breaking — the "one
      asyncio task per control channel direction" delivery loop.
    """

    def __init__(self, runtime: "RealtimeRuntime", name: str = "") -> None:
        self.runtime = runtime
        self.name = name
        self._free_at = 0.0
        self._cpu_queue: Deque[Tuple[float, Callable[[], None]]] = deque()
        self._timed: List[Tuple[float, int, ScheduledCall]] = []
        self._seq = itertools.count()
        self._wake = asyncio.Event()
        self._task: Optional[asyncio.Task] = None
        self._executing = False
        self._cost_debt = 0.0

    # -- interface -----------------------------------------------------------------

    def reserve(self, cost: float) -> float:
        """Claim *cost* seconds of this lane's serialised time; returns the finish time."""
        start = max(self.runtime.now, self._free_at)
        finish = start + cost
        self._free_at = finish
        return finish

    def submit(self, cost: float, work: Callable[[], None]) -> float:
        """Queue *work* behind everything already submitted; costs *cost* seconds."""
        finish = self.reserve(cost)
        self.runtime._call_in_loop(self._enqueue_cpu, cost, work)
        return finish

    def dispatch_at(self, time_: float, callback: Callable, *args: Any) -> None:
        """Deliver ``callback(*args)`` at absolute runtime time *time_*, in
        deadline order with FIFO tie-breaking."""
        entry = ScheduledCall(time_, callback, args)
        self.runtime._call_in_loop(self._enqueue_timed, entry)

    @property
    def idle_at(self) -> float:
        """Earliest runtime time at which this lane is (projected to be) idle."""
        now = self.runtime.now
        if not self.pending:
            return now
        horizon = max(now + self.runtime._poll, self._free_at)
        if self._timed:
            horizon = max(horizon, self._timed[0][0])
        return horizon

    @property
    def pending(self) -> int:
        """Queued-but-unexecuted work items on this lane."""
        backlog = len(self._cpu_queue) + sum(1 for _, _, e in self._timed if not e.cancelled)
        return backlog + (1 if self._executing else 0)

    # -- the lane task -------------------------------------------------------------

    def _enqueue_cpu(self, cost: float, work: Callable[[], None]) -> None:
        self._cpu_queue.append((cost, work))
        self._kick()

    def _enqueue_timed(self, entry: ScheduledCall) -> None:
        heapq.heappush(self._timed, (entry.time, next(self._seq), entry))
        self._kick()

    def _kick(self) -> None:
        if self._task is None:
            self._task = self.runtime._spawn_infra(self._run(), f"lane:{self.name}")
        self._wake.set()

    async def _run(self) -> None:
        runtime = self.runtime
        while True:
            # Timed deliveries that are due fire first, in deadline order.
            while self._timed and self._timed[0][0] <= runtime.now:
                _, _, entry = heapq.heappop(self._timed)
                if entry.cancelled:
                    continue
                runtime.executed_events += 1
                self._executing = True
                try:
                    entry.callback(*entry.args)
                except BaseException as exc:  # surface to the drive loop
                    runtime._record_crash(exc)
                finally:
                    self._executing = False
            # One unit of serialised CPU work, paying its (coalesced) cost.
            if self._cpu_queue:
                cost, work = self._cpu_queue.popleft()
                self._executing = True
                try:
                    self._cost_debt += cost
                    if self._cost_debt >= runtime._min_sleep:
                        debt, self._cost_debt = self._cost_debt, 0.0
                        await asyncio.sleep(runtime._wall(debt))
                    runtime.executed_events += 1
                    work()
                except BaseException as exc:
                    runtime._record_crash(exc)
                finally:
                    self._executing = False
                continue
            # Idle: wait for the next deadline, or for new work.
            self._wake.clear()
            if self._cpu_queue or (self._timed and self._timed[0][0] <= runtime.now):
                continue  # work arrived while draining
            if self._timed:
                delay = max(0.0, runtime._wall(self._timed[0][0] - runtime.now))
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=delay)
                except asyncio.TimeoutError:
                    pass
            else:
                await self._wake.wait()


class RealtimeRuntime(Runtime):
    """Real-concurrency implementation of the runtime scheduling interface.

    Owns a private asyncio event loop, driven from the constructing thread by
    :meth:`run` / :meth:`run_until` (exactly how the simulator is driven).
    The global timer heap is serviced by one pump task; every lane and every
    process gets a task of its own.  Call :meth:`close` when done — it
    cancels the runtime's tasks and reports what was still outstanding, which
    the soak test uses to assert nothing leaked.
    """

    def __init__(
        self,
        *,
        time_scale: float = 1.0,
        min_sleep: float = 1e-3,
        poll_interval: float = 2e-3,
    ) -> None:
        if time_scale <= 0:
            raise SimulationError(f"time_scale must be > 0, got {time_scale}")
        self._scale = time_scale
        self._min_sleep = min_sleep
        self._poll = poll_interval
        self._loop = asyncio.new_event_loop()
        self._owner_thread = threading.get_ident()
        self._origin = time.monotonic()
        self._heap: List[Tuple[float, int, ScheduledCall]] = []
        self._seq = itertools.count()
        self._wake = asyncio.Event()
        self._lanes: List[RealtimeLane] = []
        self._processes: set = set()
        self._infra: List[asyncio.Task] = []
        self._crash: Optional[BaseException] = None
        self._closed = False
        #: Callbacks executed so far (informational on this runtime: the
        #: count is real but not reproducible across runs).
        self.executed_events = 0
        self._pump_task = self._spawn_infra(self._pump(), "timer-pump")

    # -- clock ---------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Runtime seconds: scaled monotonic wall time since construction."""
        return (time.monotonic() - self._origin) / self._scale

    def _wall(self, delta: float) -> float:
        """Convert a runtime-seconds delta into wall-clock seconds."""
        return delta * self._scale

    # -- scheduling ------------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable, *args: Any) -> ScheduledCall:
        """Run ``callback(*args)`` *delay* runtime seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._push(ScheduledCall(self.now + delay, callback, args))

    def schedule_at(self, time_: float, callback: Callable, *args: Any) -> ScheduledCall:
        """Run ``callback(*args)`` at absolute runtime time *time_*.

        Unlike the simulator, a time slightly in the past is clamped to "now"
        instead of raising: the wall clock keeps moving between computing a
        deadline and scheduling it, so exact-past times are unavoidable here.
        """
        return self._push(ScheduledCall(max(time_, self.now), callback, args))

    def _push(self, entry: ScheduledCall) -> ScheduledCall:
        self._call_in_loop(self._push_in_loop, entry)
        return entry

    def _push_in_loop(self, entry: ScheduledCall) -> None:
        heapq.heappush(self._heap, (entry.time, next(self._seq), entry))
        self._wake.set()

    def event(self, name: str = "") -> RealtimeFuture:
        """Create a pending thread-safe future bound to this runtime."""
        return RealtimeFuture(self, name=name)

    def timeout(self, delay: float, result: Any = None) -> RealtimeFuture:
        """A future that completes with *result* after *delay* runtime seconds."""
        future = RealtimeFuture(self, name=f"timeout({delay})")
        self.schedule(delay, future.succeed, result)
        return future

    def lane(self, name: str = "") -> RealtimeLane:
        """A new serialisation lane backed by its own asyncio task."""
        lane = RealtimeLane(self, name=name)
        self._lanes.append(lane)
        return lane

    def process(self, generator: Generator, name: str = "") -> RealtimeFuture:
        """Drive *generator* as its own asyncio task; returns its result future."""
        future = self.event(name or getattr(generator, "__name__", "process"))
        self._call_in_loop(self._spawn_process, generator, future)
        return future

    def _spawn_process(self, generator: Generator, future: RealtimeFuture) -> None:
        task = self._loop.create_task(self._drive_process(generator, future))
        self._processes.add(task)
        task.add_done_callback(self._processes.discard)

    async def _drive_process(self, generator: Generator, future: RealtimeFuture) -> None:
        value: Any = None
        exc: Optional[BaseException] = None
        while True:
            try:
                yielded = generator.throw(exc) if exc is not None else generator.send(value)
            except StopIteration as stop:
                future.succeed(stop.value)
                return
            except BaseException as error:  # propagate process failure to waiters
                future.fail(error)
                return
            value, exc = None, None
            try:
                if yielded is None:
                    await asyncio.sleep(0)
                elif isinstance(yielded, (int, float)):
                    await asyncio.sleep(self._wall(float(yielded)))
                elif isinstance(yielded, Future):
                    value = await self._await_future(yielded)
                elif isinstance(yielded, (list, tuple)):
                    value = await self._await_future(all_of(self, yielded))
                else:
                    exc = SimulationError(f"process yielded unsupported value {yielded!r}")
            except asyncio.CancelledError:
                generator.close()
                raise
            except BaseException as error:
                exc = error

    async def _await_future(self, future: Future) -> Any:
        if not future.done:
            done = asyncio.Event()
            future.add_done_callback(lambda _future: done.set())
            await done.wait()
        if future.exception is not None:
            raise future.exception
        return future._result

    # -- the timer pump ---------------------------------------------------------------

    async def _pump(self) -> None:
        while True:
            while self._heap and self._heap[0][0] <= self.now:
                _, _, entry = heapq.heappop(self._heap)
                if entry.cancelled:
                    continue
                self.executed_events += 1
                try:
                    entry.callback(*entry.args)
                except BaseException as exc:
                    self._record_crash(exc)
            self._wake.clear()
            if self._heap and self._heap[0][0] <= self.now:
                continue  # new immediate work arrived while draining
            if self._heap:
                delay = max(0.0, self._wall(self._heap[0][0] - self.now))
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=delay)
                except asyncio.TimeoutError:
                    pass
            else:
                await self._wake.wait()

    # -- driving ----------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Drive the loop to runtime time *until*, or (without it) to quiescence.

        Quiescence means two consecutive idle probes observed no pending
        timers, no lane backlog, and no live processes — with periodic work
        armed (heartbeats), prefer ``run(until=...)`` exactly as with the
        simulator.
        """
        if until is not None:
            remaining = self._wall(until - self.now)
            if remaining > 0:
                self._drive(asyncio.sleep(remaining))
            self._drive(self._settle_due())
            return self.now
        self._drive(self._drain())
        return self.now

    def _has_due_timers(self) -> bool:
        """True while some timer (global or lane delivery) is already due."""
        now = self.now
        if self._heap and self._heap[0][0] <= now:
            return True
        return any(lane._timed and lane._timed[0][0] <= now for lane in self._lanes)

    async def _settle_due(self) -> None:
        """Let the pump/lane tasks execute every already-due timer.

        ``run(until=T)`` must not return with callbacks due at <= T still
        unexecuted (the simulator's ``run(until=...)`` executes them): the
        main sleep future and the pump's timer can resolve in the same loop
        iteration, and ``wait_for`` resumption costs extra iterations — so
        yield until the due work is drained.
        """
        while self._has_due_timers():
            self._wake.set()
            for lane in self._lanes:
                if lane._timed and lane._timed[0][0] <= self.now:
                    lane._wake.set()
            await asyncio.sleep(0)

    async def _drain(self) -> None:
        quiet = 0
        while quiet < 2:
            quiet = quiet + 1 if self.pending_events == 0 else 0
            await asyncio.sleep(self._poll)

    def run_until(self, future: Future, limit: float = 1e9) -> Any:
        """Drive the loop until *future* completes (or runtime time passes *limit*).

        Raises :class:`StuckFutureError` — with the same diagnosis shape as
        the simulator's — when the future can never complete: either the
        limit passed, or the runtime went quiescent (no timers, no lane
        backlog, no processes) with the future still pending.
        """
        if not future.done:
            self._drive(self._wait_future_done(future, limit))
        return future.result

    async def _wait_future_done(self, future: Future, limit: float) -> None:
        done = asyncio.Event()
        future.add_done_callback(lambda _future: done.set())
        quiet = 0
        while not future.done:
            if self.now > limit:
                raise self._stuck(future, reason="limit-exceeded", limit=limit)
            if self.pending_events == 0:
                quiet += 1
                if quiet >= 3:
                    raise self._stuck(future, reason="queue-drained")
            else:
                quiet = 0
            try:
                await asyncio.wait_for(done.wait(), timeout=self._poll)
            except asyncio.TimeoutError:
                pass

    def _stuck(self, future: Future, *, reason: str, limit: Optional[float] = None) -> StuckFutureError:
        name = future.name or f"0x{id(future):x}"
        waiters = len(future._callbacks)
        depth = self.pending_events
        detail = f"runtime time passed the limit t={limit}" if reason == "limit-exceeded" else "the runtime went quiescent"
        return StuckFutureError(
            f"future {name!r} stuck at t={self.now:.6f}: {detail} (pending waiters={waiters}, queue depth={depth})",
            future_name=name,
            reason=reason,
            waiters=waiters,
            queue_depth=depth,
            at=self.now,
            limit=limit,
        )

    def _drive(self, coro) -> Any:
        """Run *coro* to completion on the owner thread, surfacing crashes."""
        if self._closed:
            raise SimulationError("runtime is closed")
        if not self._on_owner_thread():
            raise SimulationError("the realtime runtime must be driven from its owner thread")
        self._check_crash()
        try:
            return self._loop.run_until_complete(coro)
        finally:
            self._check_crash()

    def _record_crash(self, exc: BaseException) -> None:
        """Remember the first callback crash; re-raised by the drive methods."""
        if self._crash is None:
            self._crash = exc

    def _check_crash(self) -> None:
        if self._crash is not None:
            crash, self._crash = self._crash, None
            raise crash

    # -- introspection / shutdown ------------------------------------------------------

    @property
    def pending_events(self) -> int:
        """Live timers + lane backlogs + live processes (quiescence probe)."""
        timers = sum(1 for _, _, entry in self._heap if not entry.cancelled)
        lanes = sum(lane.pending for lane in self._lanes)
        return timers + lanes + len(self._processes)

    def _on_owner_thread(self) -> bool:
        return threading.get_ident() == self._owner_thread

    def _call_in_loop(self, fn: Callable, *args: Any) -> None:
        """Run *fn* on the loop thread: inline when we are it, marshalled otherwise."""
        if self._on_owner_thread():
            fn(*args)
        else:
            self._loop.call_soon_threadsafe(fn, *args)

    def _spawn_infra(self, coro, name: str) -> asyncio.Task:
        task = self._loop.create_task(coro, name=name)
        self._infra.append(task)
        return task

    def close(self) -> dict:
        """Cancel the runtime's tasks and close the loop.

        Returns a leak report: processes that were still alive, lane work
        items never executed, and timers never fired.  A cleanly quiesced
        runtime reports zeros everywhere — the soak test's shutdown assertion.
        """
        if self._closed:
            return {"processes_leaked": 0, "lane_backlog": 0, "timers_pending": 0}
        report = {
            "processes_leaked": sum(1 for task in self._processes if not task.done()),
            "lane_backlog": sum(lane.pending for lane in self._lanes),
            "timers_pending": sum(1 for _, _, entry in self._heap if not entry.cancelled),
        }
        doomed = [task for task in (*self._processes, *self._infra) if not task.done()]
        for task in doomed:
            task.cancel()
        if doomed:
            self._loop.run_until_complete(asyncio.gather(*doomed, return_exceptions=True))
        self._loop.close()
        self._closed = True
        return report


__all__ = ["RealtimeFuture", "RealtimeLane", "RealtimeRuntime"]
