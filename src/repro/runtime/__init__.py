"""Runtime package: the scheduling interface and its two implementations.

* :class:`Runtime` — the abstract contract (see :mod:`repro.runtime.interface`).
* :class:`~repro.net.simulator.Simulator` — deterministic discrete-event
  kernel (lives in :mod:`repro.net`; registered as a virtual subclass).
* :class:`RealtimeRuntime` — wall-clock asyncio implementation.
* :class:`RuntimeConfig` / :func:`create_runtime` — the selection knob.
"""

from .config import RUNTIME_MODES, RuntimeConfig, create_runtime
from .interface import Runtime
from .realtime import RealtimeFuture, RealtimeLane, RealtimeRuntime

__all__ = [
    "RUNTIME_MODES",
    "RealtimeFuture",
    "RealtimeLane",
    "RealtimeRuntime",
    "Runtime",
    "RuntimeConfig",
    "create_runtime",
]
