"""The runtime scheduling interface every OpenMB component programs against.

Everything in this repository — controller shards, control channels,
southbound agents, middleboxes, traffic drivers, control applications —
schedules work exclusively through the small surface documented here.  Two
implementations exist:

* :class:`~repro.net.simulator.Simulator` — the deterministic discrete-event
  kernel.  The default, and the only runtime the golden/chaos test matrices
  run on: the same seed always produces the same callback schedule, bit for
  bit.
* :class:`~repro.runtime.realtime.RealtimeRuntime` — real concurrency on
  asyncio: delays are monotonic-clock sleeps, every :meth:`Runtime.lane`
  (a controller shard's CPU, one direction of a control channel) is backed by
  its own asyncio task, and every :meth:`Runtime.process` generator drives an
  asyncio task of its own.  This is the runtime the ``bench_wallclock_*``
  family measures real ops/sec and latency percentiles on.

The contract, precisely:

``now``
    Current runtime time in seconds (simulated time, or scaled monotonic
    wall-clock time since runtime construction).
``schedule(delay, callback, *args)`` / ``schedule_at(time, callback, *args)``
    Run a callback later; both return a handle with ``cancel()``.  Callbacks
    scheduled for the same time run in scheduling order (FIFO tie-breaking).
``event(name)`` / ``timeout(delay, result)``
    Create a pending / delay-completed :class:`~repro.net.simulator.Future`.
``process(generator, name)``
    Drive a generator that yields delays / futures / lists of futures.
``lane(name)``
    A serialisation point executing submitted work strictly one item at a
    time (``submit(cost, work)``, ``reserve(cost)``, ``dispatch_at(time,
    cb, *args)``, ``idle_at``, ``pending``).
``run(until)`` / ``run_until(future, limit)``
    Drive the runtime; ``run_until`` raises
    :class:`~repro.core.errors.StuckFutureError` when the future can never
    complete.
``pending_events`` / ``executed_events``
    Scheduling introspection (drive loops and determinism fingerprints).

The differential harness (:mod:`repro.testing.equivalence`) runs identical
scenarios on both implementations and asserts identical *observable*
outcomes — final state maps, per-guarantee invariants, operation outcomes —
which is the contract's enforcement mechanism: timings may differ between
runtimes, observables may not.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Generator


class Runtime(ABC):
    """Abstract base for the scheduling interface (see module docstring).

    :class:`~repro.net.simulator.Simulator` is registered as a virtual
    subclass (it predates this module and must not import it), so
    ``isinstance(sim, Runtime)`` holds for both implementations.
    """

    @property
    @abstractmethod
    def now(self) -> float:
        """Current runtime time in seconds."""

    @abstractmethod
    def schedule(self, delay: float, callback: Callable, *args: Any):
        """Run ``callback(*args)`` *delay* seconds from now; returns a cancellable handle."""

    @abstractmethod
    def schedule_at(self, time: float, callback: Callable, *args: Any):
        """Run ``callback(*args)`` at absolute *time*; returns a cancellable handle."""

    @abstractmethod
    def event(self, name: str = ""):
        """Create a pending future bound to this runtime."""

    @abstractmethod
    def timeout(self, delay: float, result: Any = None):
        """A future that completes with *result* after *delay* seconds."""

    @abstractmethod
    def process(self, generator: Generator, name: str = ""):
        """Drive a generator-based process; returns a future for its return value."""

    @abstractmethod
    def lane(self, name: str = ""):
        """A new serialisation lane (CPU / wire direction) on this runtime."""

    @abstractmethod
    def run(self, until: float | None = None) -> float:
        """Drive the runtime (to *until*, or to quiescence); returns the final time."""

    @abstractmethod
    def run_until(self, future, limit: float = 1e9) -> Any:
        """Drive the runtime until *future* completes; returns its result."""

    @property
    @abstractmethod
    def pending_events(self) -> int:
        """Scheduled-but-unexecuted work items (drive-loop quiescence probe)."""


def _register_simulator() -> None:
    """Register :class:`Simulator` as a virtual :class:`Runtime` subclass."""
    from ..net.simulator import Simulator

    Runtime.register(Simulator)


_register_simulator()

__all__ = ["Runtime"]
