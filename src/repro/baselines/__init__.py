"""Baseline systems the paper compares OpenMB against."""

from . import config_routing, split_merge, vm_snapshot
from .config_routing import ConfigRoutingREMigration, HoldUpReport, hold_up_from_trace, scale_down_hold_up
from .split_merge import (
    SplitMergeMigration,
    SuspensionReport,
    expected_added_latency,
    expected_buffered_packets,
)
from .vm_snapshot import SnapshotReport, clone_via_snapshot, snapshot_migration_report, snapshot_size

#: Table 2: applicability of each control scheme to each dynamic scenario.
APPLICABILITY_MATRIX = {
    "SDMBN (OpenMB)": {"scale-up": "yes", "scale-down": "yes", "migration": "yes"},
    "VM snapshot": dict(vm_snapshot.CAPABILITIES),
    "Config + routing": dict(config_routing.CAPABILITIES),
    "Split/Merge": dict(split_merge.CAPABILITIES),
}

__all__ = [
    "ConfigRoutingREMigration",
    "HoldUpReport",
    "hold_up_from_trace",
    "scale_down_hold_up",
    "SplitMergeMigration",
    "SuspensionReport",
    "expected_added_latency",
    "expected_buffered_packets",
    "SnapshotReport",
    "clone_via_snapshot",
    "snapshot_migration_report",
    "snapshot_size",
    "APPLICABILITY_MATRIX",
]
