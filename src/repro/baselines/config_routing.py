"""Configuration+routing-only baseline (paper sections 2.1 and 8.1.2).

With SDN it is possible to control middlebox *configuration* and network
*routing* in tandem, but without any way to move internal state.  The paper
shows two consequences:

* **Scale-down** cannot re-route in-progress flows (the middlebox they were
  pinned to has the only copy of their state), so the instance being retired
  must be kept alive until its last flow finishes — more than 1500 seconds for
  roughly 9 % of flows in the data-center trace (Figure 8).
* **RE migration** must start the new decoder (and a new encoder cache) empty;
  any mis-ordering between the encoder starting to use the new cache and the
  routing update means encoded packets reach a decoder whose cache cannot
  reconstruct them, and the caches never re-synchronise (Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Sequence

import numpy as np

from ..apps.base import ControlApplication
from ..apps.scenarios import REMigrationScenario
from ..traffic.distributions import fraction_exceeding
from ..traffic.records import Trace


# ---------------------------------------------------------------------------------------------------
# Scale-down: how long is the deprecated middlebox held up?
# ---------------------------------------------------------------------------------------------------


@dataclass
class HoldUpReport:
    """How long a deprecated middlebox must stay alive waiting for flows to drain."""

    active_flows: int
    held_up_seconds: float
    fraction_over_1500s: float


def scale_down_hold_up(flow_durations: Sequence[float], *, decision_time: float = 0.0) -> HoldUpReport:
    """Given flow durations (all starting at t=0), compute the drain time after *decision_time*.

    Only flows still active at the decision time hold the middlebox up; the
    hold-up is the time until the last of them completes.
    """
    durations = np.asarray(list(flow_durations), dtype=float)
    remaining = durations[durations > decision_time] - decision_time
    held_up = float(remaining.max()) if remaining.size else 0.0
    return HoldUpReport(
        active_flows=int(remaining.size),
        held_up_seconds=held_up,
        fraction_over_1500s=fraction_exceeding(durations, 1500.0),
    )


def hold_up_from_trace(trace: Trace, *, decision_time: float = 0.0) -> HoldUpReport:
    """Hold-up computed from a packet trace: a flow is active until its last packet."""
    last_seen = {}
    first_seen = {}
    for record in trace.records:
        key = record.flow_key().bidirectional()
        first_seen.setdefault(key, record.time)
        last_seen[key] = record.time
    durations = [last_seen[key] - first_seen[key] for key in last_seen]
    ends = [last_seen[key] for key in last_seen if last_seen[key] > decision_time]
    held_up = max(ends) - decision_time if ends else 0.0
    return HoldUpReport(
        active_flows=len(ends),
        held_up_seconds=float(held_up),
        fraction_over_1500s=fraction_exceeding(durations, 1500.0),
    )


# ---------------------------------------------------------------------------------------------------
# RE migration without state cloning
# ---------------------------------------------------------------------------------------------------


class ConfigRoutingREMigration(ControlApplication):
    """The RE migration performed with configuration and routing control only.

    The new decoder in DC B starts with an empty cache and the encoder creates
    an empty second cache for it (there is no cloneSupport).  The encoder is
    told to start using the new cache for DC B's subnet immediately, while the
    routing update is delayed by ``routing_delay_packets`` encoder packets —
    the paper's "routing change takes effect after the encoder has sent 10
    packets" — so the first encoded packets reach the old decoder, the caches
    fall out of sync, and they stay that way.
    """

    name = "config-routing-re-migration"

    def __init__(
        self,
        scenario: REMigrationScenario,
        *,
        routing_delay: float = 0.05,
        on_cache_switched=None,
    ) -> None:
        super().__init__(scenario.sim, scenario.northbound, scenario.sdn)
        self.scenario = scenario
        self.routing_delay = routing_delay
        #: Optional callback invoked right after the encoder starts using the new
        #: cache — benchmarks use it to resume the migrated VMs' traffic so that a
        #: known number of packets is encoded against the new cache but still routed
        #: to the old decoder before the routing update lands.
        self.on_cache_switched = on_cache_switched

    def steps(self) -> Generator:
        nb = self.nb
        encoder = self.scenario.encoder.name
        # The baseline has no state operations available: it can only change
        # configuration (create an empty cache) and routing.
        self._log("creating an empty second cache at the encoder (no cloning available)")
        yield nb.write_config(encoder, "NewCachesEmpty", [True])
        yield nb.write_config(encoder, "NumCaches", [2])
        self._log("switching the encoder to the new cache for DC B traffic")
        yield nb.write_config(
            encoder, "CacheFlows", [self.scenario.dc_a_prefix, self.scenario.dc_b_prefix]
        )
        if self.on_cache_switched is not None:
            self.on_cache_switched()
        # The routing update lags behind the configuration change — the paper's
        # experiment assumes it takes effect only after the encoder has sent ten
        # packets encoded against the new (empty) cache.
        self._log(f"waiting {self.routing_delay}s before the routing update takes effect")
        yield self.routing_delay
        yield self.scenario.reroute_dc_b()
        self._log("routing update installed")
        return self.report


#: Applicability of configuration+routing control to the paper's scenarios (Table 2).
CAPABILITIES = {
    "scale-up": "partial",  # only new flows can use the new instance
    "scale-down": "partial",  # the deprecated instance is held up until flows drain
    "migration": "partial",  # stateful functions (RE, IDS) break for in-progress flows
}
