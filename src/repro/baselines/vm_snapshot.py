"""VM-snapshot baseline (paper section 2.1 and 8.1.2).

Running a middlebox as a VM makes it possible to "migrate" or "clone" it by
snapshotting the whole VM and booting the snapshot elsewhere.  The snapshot
necessarily carries *all* of the middlebox's state — including state for flows
that are not moving — which wastes memory and, worse, causes incorrect
behaviour: the flows that migrated terminate abruptly at the old instance and
the flows that stayed terminate abruptly at the new instance, so an IDS logs
anomalies for both groups.

This module models a VM snapshot as a deep copy of a middlebox's entire state
(configuration, per-flow stores, shared slots), measured in serialised bytes so
snapshot sizes can be compared with the amount of state OpenMB actually moves.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.chunks import serialize_payload
from ..core.flowspace import FlowPattern
from ..core.state import StateRole
from ..middleboxes.base import Middlebox


@dataclass
class SnapshotReport:
    """Sizes involved in one snapshot-based migration."""

    base_bytes: int
    full_bytes: int
    needed_bytes: int
    unneeded_bytes: int

    @property
    def overhead_ratio(self) -> float:
        """Unneeded bytes as a fraction of the full snapshot delta."""
        delta = self.full_bytes - self.base_bytes
        if delta <= 0:
            return 0.0
        return self.unneeded_bytes / delta


def _serialized_size(middlebox: Middlebox, pattern: Optional[FlowPattern] = None) -> int:
    """Serialised size of a middlebox's state, optionally restricted to a flow pattern."""
    pattern = pattern or FlowPattern.wildcard()
    total = len(serialize_payload(middlebox.config.export()))
    for role in (StateRole.SUPPORTING, StateRole.REPORTING):
        store = middlebox.support_store if role is StateRole.SUPPORTING else middlebox.report_store
        serialize = (
            middlebox.serialize_support if role is StateRole.SUPPORTING else middlebox.serialize_report
        )
        for key, obj in store.items():
            if pattern.matches_either_direction(key):
                total += len(serialize_payload(serialize(key, obj)))
    for slot, role in ((middlebox.shared_support, StateRole.SUPPORTING), (middlebox.shared_report, StateRole.REPORTING)):
        if slot is not None:
            total += len(serialize_payload(middlebox.serialize_shared(role, slot.clone_value())))
    return total


def snapshot_size(middlebox: Middlebox, pattern: Optional[FlowPattern] = None) -> int:
    """Size in bytes of a snapshot of *middlebox* (optionally only state matching *pattern*)."""
    return _serialized_size(middlebox, pattern)


def clone_via_snapshot(source: Middlebox, target: Middlebox) -> int:
    """Boot *target* from a snapshot of *source*: copy every piece of state wholesale.

    Returns the number of per-flow entries copied.  This deliberately bypasses
    the OpenMB APIs — a VM snapshot has no notion of per-flow granularity or of
    which state the new instance actually needs.
    """
    if source.mb_type != target.mb_type:
        raise ValueError("a VM snapshot can only instantiate the same middlebox type")
    target.config = source.config.clone()
    target.on_config_changed("*")
    copied = 0
    for key, obj in source.support_store.items():
        target.support_store.put(key, copy.deepcopy(obj))
        copied += 1
    for key, obj in source.report_store.items():
        target.report_store.put(key, copy.deepcopy(obj))
        copied += 1
    if source.shared_support is not None and target.shared_support is not None:
        target.shared_support.replace(copy.deepcopy(source.shared_support.value))
    if source.shared_report is not None and target.shared_report is not None:
        target.shared_report.replace(copy.deepcopy(source.shared_report.value))
    return copied


def snapshot_migration_report(
    source: Middlebox,
    *,
    base_size: int,
    migrated_pattern: FlowPattern,
) -> SnapshotReport:
    """Size accounting for migrating the flows matching *migrated_pattern* via a snapshot.

    ``base_size`` is the size of a freshly booted instance (the paper's BASE
    image); the *needed* state is the per-flow state matching the migrated
    pattern; everything else carried by the snapshot is unneeded.
    """
    full = snapshot_size(source)
    needed = snapshot_size(source, migrated_pattern) - snapshot_size(source, FlowPattern(nw_src="255.255.255.255"))
    needed = max(needed, 0)
    unneeded = max(full - base_size - needed, 0)
    return SnapshotReport(base_bytes=base_size, full_bytes=full, needed_bytes=needed, unneeded_bytes=unneeded)


#: Applicability of the VM-snapshot approach to the paper's scenarios (Table 2).
CAPABILITIES: Dict[str, str] = {
    "scale-up": "partial",  # can clone an instance, but clones all state, causing incorrect behaviour
    "scale-down": "no",  # cannot merge state from multiple instances
    "migration": "partial",  # moves everything, wasting memory and producing incorrect log entries
}
