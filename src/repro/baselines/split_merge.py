"""Split/Merge-style baseline (paper sections 2.1 and 8.1.2).

Split/Merge (Rajagopalan et al., NSDI 2013) migrates per-flow middlebox state
between replicas, but achieves atomicity by *halting* the affected traffic
while state moves: packets for the flows being migrated are buffered at the
network until the transfer completes and the routing update is installed.
The paper measures the cost of that choice — with 1000 chunks of state moving
and packets arriving at 1000 packets/second, 244 packets had to be buffered
and their processing latency grew by 863 ms.

Split/Merge also has no notion of shared state, so scale-down of middleboxes
with shared supporting or reporting state (RE, the monitor) is out of scope
for it (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from ..apps.base import ControlApplication
from ..apps.scenarios import TwoInstanceScenario
from ..core.flowspace import FlowPattern


@dataclass
class SuspensionReport:
    """Cost of a suspend-and-buffer migration."""

    buffered_packets: int
    buffering_latencies: List[float] = field(default_factory=list)
    move_duration: float = 0.0

    @property
    def mean_added_latency(self) -> float:
        if not self.buffering_latencies:
            return 0.0
        return sum(self.buffering_latencies) / len(self.buffering_latencies)

    @property
    def max_added_latency(self) -> float:
        return max(self.buffering_latencies, default=0.0)


def expected_buffered_packets(packet_rate: float, move_duration: float) -> int:
    """Analytical estimate: packets arriving while traffic is suspended."""
    return int(packet_rate * move_duration)


def expected_added_latency(packet_rate: float, move_duration: float) -> float:
    """Analytical estimate of the mean added latency of buffered packets.

    Packets arrive uniformly during the suspension window and are all released
    at its end, so the average packet waits half the window.
    """
    if packet_rate <= 0:
        return 0.0
    return move_duration / 2.0


class SplitMergeMigration(ControlApplication):
    """Migrate per-flow state with traffic suspended, Split/Merge style."""

    name = "split-merge-migration"

    def __init__(
        self,
        scenario: TwoInstanceScenario,
        *,
        pattern: FlowPattern | list | dict | str,
        src_mb: Optional[str] = None,
        dst_mb: Optional[str] = None,
    ) -> None:
        super().__init__(scenario.sim, scenario.northbound, scenario.sdn)
        self.scenario = scenario
        self.pattern = pattern if isinstance(pattern, FlowPattern) else FlowPattern.parse(pattern)
        self.src_mb = src_mb or scenario.mb1.name
        self.dst_mb = dst_mb or scenario.mb2.name
        self.suspension = SuspensionReport(buffered_packets=0)

    def steps(self) -> Generator:
        ingress = self.scenario.ingress
        # 1. Halt the affected traffic: buffer it at the ingress switch.
        ingress.buffer_pattern(self.pattern)
        self._log(f"suspended traffic matching {self.pattern!r} at {ingress.name}")
        move_started = self.sim.now

        # 2. Clone configuration and move the per-flow state while traffic is held.
        values = yield self.nb.read_config(self.src_mb, "*")
        yield self.nb.write_config(self.dst_mb, "*", values)
        handle = self.nb.move_internal(self.src_mb, self.dst_mb, self.pattern)
        record = yield handle.completed

        # 3. Update routing so released packets reach the new instance.
        yield self.scenario.route_via(self.dst_mb, self.pattern)

        # 4. Release the buffered packets.
        released = ingress.release_pattern(self.pattern)
        self.suspension = SuspensionReport(
            buffered_packets=len(released),
            buffering_latencies=[duration for _, duration in released],
            move_duration=self.sim.now - move_started,
        )
        self._log(
            f"released {self.suspension.buffered_packets} buffered packets after "
            f"{self.suspension.move_duration:.3f}s; mean added latency "
            f"{self.suspension.mean_added_latency * 1000:.1f} ms"
        )
        self.report.details["move"] = record
        self.report.details["buffered_packets"] = self.suspension.buffered_packets
        self.report.details["mean_added_latency"] = self.suspension.mean_added_latency
        self.report.details["max_added_latency"] = self.suspension.max_added_latency
        return self.report


#: Applicability of Split/Merge to the paper's scenarios (Table 2).
CAPABILITIES = {
    "scale-up": "yes",  # designed for elastic scaling, at the cost of suspending traffic
    "scale-down": "partial",  # no support for merging shared state
    "migration": "yes",  # per-flow state moves, with traffic halted during the move
}
